"""Multi-process sharded ingestion and fan-out queries.

The GSS paper argues the summary supports high-speed streams because updates
are hash-local; the same property makes it shard cleanly.
:class:`ShardedSummary` takes the simulated deployment of
:class:`~repro.core.partitioned.PartitionedGSS` across real process
boundaries:

* edges are routed to one of ``workers`` shard *processes* by hashing the
  source node (the same source-cut routing, same hash, as ``PartitionedGSS``
  — a cluster and a single-process partitioned sketch with equal shard
  configurations answer every query identically);
* each worker owns any registry-buildable summary (GSS by default, with its
  own matrix backend); when the worker's summary exposes a hashed ingest path
  the client hashes every batch exactly once (node + routing hashes, see
  :class:`~repro.streaming.batch.HashedBatch`) and ships the precomputed
  columns — over a per-worker shared-memory ring on the ``shm`` transport,
  or pickled through the pipe (see :mod:`repro.cluster.transport`);
* ingestion is pipelined: batches are queued to workers without waiting, a
  bounded number of batches may be in flight per worker (back-pressure), and
  every query acts as a per-shard barrier because the pipes are FIFO;
* queries are capability-gated fan-out: edge / successor / node-out-weight
  route to the single owning shard, precursor and node-in-weight scatter to
  every shard and merge the answers;
* the whole cluster checkpoints through the shards' ``to_dict`` snapshots
  (see :mod:`repro.cluster.checkpoint`) and restores mid-stream.

The class satisfies the :class:`repro.api.GraphSummary` protocol and is
registered in the factory as ``"sharded-gss"``, so :class:`StreamSession`,
the conformance laws, the CLI and the experiment runners drive it unchanged.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections import deque
from time import perf_counter
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple, Union

from repro.cluster.transport import (
    DEFAULT_RING_BYTES,
    RingAllocator,
    encode_hashed_batch,
    resolve_transport,
)
from repro.cluster.worker import worker_main
from repro.hashing.hash_functions import hash_key
from repro.obs import trace as obs_trace
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.queries.primitives import Capabilities, ShardIngestStats, SummaryShims
from repro.streaming.batch import HashedBatch, HashSpec

__all__ = ["ClusterError", "ShardedSummary", "DEFAULT_ROUTING_SEED"]

#: Default seed of the shard-routing hash; shared with ``PartitionedGSS`` so
#: the two deployments route identically out of the box.
DEFAULT_ROUTING_SEED = 97

SNAPSHOT_FORMAT_VERSION = 1


class ClusterError(RuntimeError):
    """A shard worker failed (build error, query error, or dead process)."""


def _pick_context(start_method: Optional[str]):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    # fork starts workers in milliseconds and needs no pickling of the spec;
    # platforms without it (Windows, some macOS configurations) fall back to
    # their default (spawn), which works but pays interpreter start-up.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class _WorkerHandle:
    """Parent-side bookkeeping for one shard worker process.

    Tracks the number of outstanding replies (every request gets exactly one,
    in order), the items routed to the shard, and the high-water mark of
    in-flight batches — the cluster's observable queue-depth metric.  On the
    ``shm`` transport the handle also owns the worker's shared-memory ring:
    batches are written into ring segments whose reservations are queued
    alongside the pending replies and freed — strictly FIFO — as each batch
    acknowledgement is consumed.
    """

    def __init__(
        self,
        context,
        spec,
        worker_id: int,
        max_pending: int,
        snapshot=None,
        snapshot_backend=None,
        transport: str = "pipe",
        ring_bytes: int = DEFAULT_RING_BYTES,
        obs_enabled: bool = False,
    ) -> None:
        parent_end, child_end = context.Pipe(duplex=True)
        self.worker_id = worker_id
        self.max_pending = max_pending
        #: Parent-side obs instruments, attached by the cluster when its
        #: telemetry is on (``None`` keeps the data plane at one branch).
        self.obs_queue_wait = None
        self.obs_items = None
        self.shm = None
        self._ring: Optional[RingAllocator] = None
        if transport == "shm":
            from multiprocessing import shared_memory

            self.shm = shared_memory.SharedMemory(create=True, size=ring_bytes)
            self._ring = RingAllocator(ring_bytes)
        self.process = context.Process(
            target=worker_main,
            args=(
                child_end,
                spec,
                worker_id,
                snapshot,
                snapshot_backend,
                self.shm.name if self.shm is not None else None,
                obs_enabled,
            ),
            daemon=True,
            name=f"repro-shard-{worker_id}",
        )
        try:
            self.process.start()
        except Exception:
            self._release_shm()
            raise
        child_end.close()
        self.conn = parent_end
        self.pending = 0
        self.items_routed = 0
        self.high_water = 0
        self.closed = False
        #: One entry per outstanding reply, FIFO: the ring reservation to
        #: free when that reply is consumed, or ``None`` for non-shm traffic.
        self._reservations: deque = deque()
        self.info: Dict = {}
        try:
            ready = self._read_reply()  # build handshake
        except ClusterError:
            self._release_shm()
            raise
        if isinstance(ready, tuple) and ready and ready[0] == "ready":
            self.info = ready[1] if len(ready) > 1 else {}
        elif ready != "ready":  # pragma: no cover - defensive
            self._release_shm()
            raise ClusterError(
                f"shard worker {worker_id} sent {ready!r} instead of ready"
            )

    # -- low-level protocol --------------------------------------------------

    def _recv(self):
        try:
            return self.conn.recv()
        except (EOFError, OSError) as error:
            raise ClusterError(
                f"shard worker {self.worker_id} died (pipe closed): {error!r}"
            ) from None

    def _read_reply(self):
        """Read one uncounted reply (the build handshake only)."""
        kind, payload = self._recv()
        if kind == "err":
            raise ClusterError(str(payload))
        return payload

    def _take_reply(self):
        """Consume one counted reply; raise on worker errors.

        ``pending`` is decremented — and the reply's ring reservation freed —
        *before* the error check: an ``err`` reply is still a reply, and
        forgetting to count it would leave the handle expecting one more
        message than the worker will ever send — every later request on the
        shard would block forever.
        """
        kind, payload = self._recv()
        self.pending -= 1
        if self._reservations:
            reservation = self._reservations.popleft()
            if reservation is not None:
                self._ring.free(reservation)
        if kind == "err":
            raise ClusterError(str(payload))
        return payload

    def _post(self, message: Tuple, item_count: int, reservation=None) -> None:
        """Queue one data-plane message without waiting for it to be applied.

        Replies already sitting in the pipe are drained opportunistically,
        and the number of in-flight batches is bounded by ``max_pending`` so
        a slow shard exerts back-pressure instead of buffering unboundedly.
        """
        self.conn.send(message)
        self.pending += 1
        self._reservations.append(reservation)
        self.items_routed += item_count
        if self.obs_items is not None:
            self.obs_items.inc(item_count)
        if self.pending > self.high_water:
            self.high_water = self.pending
        while self.pending and self.conn.poll():
            self._take_reply()
        if self.pending > self.max_pending:
            # The back-pressure stall: how long routing blocked on this
            # shard draining its queue — the cluster's queue-wait series.
            waited = perf_counter() if self.obs_queue_wait is not None else None
            while self.pending > self.max_pending:
                self._take_reply()
            if waited is not None:
                self.obs_queue_wait.observe(perf_counter() - waited)

    def send_batch(self, items: List[Tuple[Hashable, Hashable, float]]) -> None:
        """Queue one plain triple batch (summaries without hashed ingest)."""
        self._post(("batch", items), len(items))

    def send_hashed(self, batch: HashedBatch) -> None:
        """Queue one routed :class:`HashedBatch` through the data plane.

        ``shm`` transport: the encoded batch goes into the ring; when the
        ring is full, pending acknowledgements are drained (freeing segments
        FIFO) until it fits.  A batch that cannot fit even in an empty ring
        — or pipe transport — travels pickled through the control pipe
        (``hbatch``); both forms are applied identically by the worker.
        """
        if self._ring is not None:
            payload = encode_hashed_batch(batch)
            allocated = self._ring.alloc(len(payload))
            if allocated is None and self.pending:
                # Ring-full stall: counted into the same queue-wait series
                # as the pipe back-pressure drain above.
                waited = (
                    perf_counter() if self.obs_queue_wait is not None else None
                )
                while allocated is None and self.pending:
                    self._take_reply()
                    allocated = self._ring.alloc(len(payload))
                if waited is not None:
                    self.obs_queue_wait.observe(perf_counter() - waited)
            if allocated is not None:
                offset, reservation = allocated
                self.shm.buf[offset : offset + len(payload)] = payload
                self._post(
                    ("shmbatch", offset, len(payload)), len(batch), reservation
                )
                return
        self._post(("hbatch", batch), len(batch))

    def send_request(self, message: Tuple) -> None:
        """Send a request whose reply will be collected later (fan-out)."""
        self.conn.send(message)
        self.pending += 1
        self._reservations.append(None)

    def collect(self):
        """Drain replies until the most recently sent request's arrives.

        Valid because replies come back in request order: once ``pending``
        reaches zero the reply just read belongs to the last request sent.
        """
        payload = None
        while self.pending:
            payload = self._take_reply()
        return payload

    def request(self, message: Tuple):
        """Round-trip one request (draining queued batch replies first)."""
        self.send_request(message)
        return self.collect()

    def drain(self) -> None:
        """Block until every queued batch has been applied by the worker."""
        while self.pending:
            self._take_reply()

    # -- lifecycle -----------------------------------------------------------

    def _release_shm(self) -> None:
        """Close and unlink the ring segment (owner side); idempotent."""
        if self.shm is None:
            return
        shm, self.shm = self.shm, None
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, BufferError, OSError):  # pragma: no cover
            pass

    def stop(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.request(("stop",))
        except ClusterError:
            pass  # a dead worker is already stopped
        finally:
            self.process.join(timeout=5)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.terminate()
                self.process.join(timeout=5)
            self.conn.close()
            self._release_shm()

    def kill(self) -> None:
        """Hard-terminate the worker without flushing (crash simulation)."""
        if self.closed:
            return
        self.closed = True
        self.process.terminate()
        self.process.join(timeout=5)
        self.conn.close()
        self._release_shm()


class ShardedSummary(SummaryShims):
    """A graph-stream summary sharded across worker processes.

    Parameters
    ----------
    inner_spec:
        :class:`~repro.api.registry.SketchSpec` every worker builds its shard
        from.  The spec must carry sizing (a budget, expected edges, or an
        explicit size parameter); the registry's ``sharded-gss`` builder does
        the budget-splitting arithmetic.
    workers:
        Number of shard processes.
    routing_seed:
        Seed of the source-node routing hash (kept at
        :data:`DEFAULT_ROUTING_SEED` to match ``PartitionedGSS``).
    batch_size:
        Scalar ``update`` calls are coalesced client-side into batches of
        this size before being queued to a shard.
    max_pending_batches:
        Bound on in-flight batches per worker (ingestion back-pressure).
    transport:
        Data-plane transport for routed batches (see
        :mod:`repro.cluster.transport`): ``"shm"`` ships hash columns
        through per-worker shared-memory rings, ``"pipe"`` pickles batches
        through the control pipes, ``"auto"`` (default) picks ``shm`` when
        NumPy and ``multiprocessing.shared_memory`` are available.  The
        choice never changes answers, only speed.
    ring_bytes:
        Capacity of each worker's shared-memory ring (``shm`` only).
    start_method:
        Optional :mod:`multiprocessing` start method override.
    shard_snapshots / snapshot_backend:
        Restore path (used by :meth:`from_dict` / checkpoint recovery): one
        snapshot document per worker, rebuilt inside each worker during the
        start-up handshake instead of building a fresh sketch.

    Examples
    --------
    >>> from repro.api import SketchSpec
    >>> cluster = ShardedSummary(SketchSpec("gss", memory_bytes=4096), workers=2)
    >>> cluster.update("a", "b", 2.0)
    >>> cluster.edge_query("a", "b")
    2.0
    >>> cluster.close()
    """

    def __init__(
        self,
        inner_spec,
        workers: int = 2,
        *,
        routing_seed: int = DEFAULT_ROUTING_SEED,
        batch_size: int = 1024,
        max_pending_batches: int = 16,
        transport: str = "auto",
        ring_bytes: int = DEFAULT_RING_BYTES,
        start_method: Optional[str] = None,
        shard_snapshots: Optional[List[Dict]] = None,
        snapshot_backend: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if max_pending_batches < 1:
            raise ValueError("max_pending_batches must be at least 1")
        if shard_snapshots is not None and len(shard_snapshots) != workers:
            raise ValueError(
                f"{len(shard_snapshots)} shard snapshots for {workers} workers"
            )
        self.inner_spec = inner_spec
        self.workers = workers
        self.batch_size = batch_size
        self._routing_seed = routing_seed
        self._update_count = 0
        self._closed = False
        # Reentrant guard serializing every pipe-touching operation.  A bare
        # cluster used from one thread never contends on it; the network
        # front end (repro.serve) and any multi-threaded caller rely on it
        # for two guarantees: (a) pipe messages never interleave, and
        # (b) barrier() / shard_snapshots() hold it across *all* shards, so
        # a concurrent query observes either the whole pre-checkpoint state
        # or the whole post-checkpoint state — never a partial mix.
        self._lock = threading.RLock()
        self._transport = resolve_transport(transport)
        self._context = _pick_context(start_method)
        # Cluster telemetry: adopted from the globally-enabled registry when
        # one is active at construction time, or installed later through
        # :meth:`enable_obs` (the serve front end's path).  Workers record
        # into their own process-local registries; the parent caches their
        # snapshots on every flush so :meth:`obs_snapshot` never has to touch
        # a pipe.
        self._obs = obs_trace.active()
        self._obs_worker_cache: Optional[Dict] = None
        self._handles: List[_WorkerHandle] = []
        try:
            for worker_id in range(workers):
                # On the restore path each worker rebuilds its summary from
                # its snapshot during the handshake, instead of building a
                # fresh sketch only to throw it away.
                self._handles.append(
                    _WorkerHandle(
                        self._context,
                        inner_spec,
                        worker_id,
                        max_pending_batches,
                        snapshot=(
                            shard_snapshots[worker_id] if shard_snapshots else None
                        ),
                        snapshot_backend=snapshot_backend,
                        transport=self._transport,
                        ring_bytes=ring_bytes,
                        obs_enabled=self._obs is not None,
                    )
                )
        except Exception:
            self.close()
            raise
        if self._obs is not None:
            self._attach_obs_instruments()
        # The workers report their summary's hash spec in the build
        # handshake; when present, the client hashes every batch exactly
        # once (node + routing hashes, vectorized when NumPy is available)
        # and ships the columns — the hash-once ingest pipeline.  Summaries
        # without a hashed ingest path fall back to plain triple batches
        # (and the shm ring, useless without hash columns, is ignored).
        self._shard_spec: Optional[HashSpec] = self._handles[0].info.get("hash_spec")
        self._client_spec: Optional[HashSpec] = (
            self._shard_spec.with_routing(routing_seed)
            if self._shard_spec is not None
            else None
        )
        if self._shard_spec is None:
            self._transport = "pipe"
        self._node_memo: Dict[Hashable, int] = {}
        self._route_memo: Dict[Hashable, int] = {}
        # Client-side coalescing buffers for scalar updates.
        self._outbox: List[List[Tuple[Hashable, Hashable, float]]] = [
            [] for _ in range(workers)
        ]

    # -- routing -------------------------------------------------------------

    def shard_of(self, node: Hashable) -> int:
        """Index of the shard process that owns the out-edges of ``node``."""
        return hash_key(node, seed=self._routing_seed) % self.workers

    @property
    def transport(self) -> str:
        """The effective data-plane transport (``"shm"`` or ``"pipe"``)."""
        return self._transport

    def hash_spec(self) -> Optional[HashSpec]:
        """Shard node-hash family plus this cluster's routing seed.

        ``None`` when the workers' summary type has no hashed ingest path —
        callers (``StreamSession``) then feed plain batches instead of
        prehashed ones.
        """
        return self._client_spec

    # -- updates -------------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Route one stream item to its shard (coalesced client-side)."""
        with self._lock:
            self._ensure_open()
            shard = self.shard_of(source)
            outbox = self._outbox[shard]
            outbox.append((source, destination, weight))
            self._update_count += 1
            if len(outbox) >= self.batch_size:
                self._dispatch(shard, outbox)
                self._outbox[shard] = []

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Hash a batch once, split it by shard, and queue each group.

        Returns the number of items routed.  The call does *not* wait for the
        workers to apply the batches — :meth:`flush` (or any query) is the
        barrier — which is what lets routing and shard ingestion overlap
        across processes.  When the workers reported a hash spec, the items
        become one :class:`~repro.streaming.batch.HashedBatch` (node and
        routing hashes computed once, vectorized when NumPy is available)
        whose shard sub-batches carry their hash columns all the way into
        the workers' matrix backends.
        """
        with self._lock:
            self._ensure_open()
            if self._client_spec is None:
                return self._update_many_plain(items)
            return self.update_many_hashed(
                HashedBatch.from_items(
                    items,
                    self._client_spec,
                    node_memo=self._node_memo,
                    route_memo=self._route_memo,
                )
            )

    def update_many_hashed(self, batch: HashedBatch) -> int:
        """Route a prepared :class:`HashedBatch` to its owning shard workers.

        A batch built under a different hash family (or without routing
        hashes) is re-hashed once here; a matching batch — e.g. one built by
        ``StreamSession`` against :meth:`hash_spec` — flows through with no
        additional hash work.
        """
        with self._lock:
            self._ensure_open()
            if self._client_spec is None:
                return self._update_many_plain(batch.items())
            if (
                not batch.hashed
                or batch.spec is None
                or not batch.spec.matches(self._client_spec)
                or batch.spec.routing_seed != self._routing_seed
                or batch.route_hashes is None
            ):
                batch = HashedBatch.from_items(
                    batch.items(),
                    self._client_spec,
                    node_memo=self._node_memo,
                    route_memo=self._route_memo,
                )
            count = 0
            with obs_trace.span("cluster.route", registry=self._obs):
                for shard, sub_batch in batch.split_by_route(self.workers):
                    if self._outbox[shard]:
                        # Preserve stream order within the shard: coalesced
                        # scalar updates queued before this batch must be
                        # applied first.
                        self._dispatch(shard, self._outbox[shard])
                        self._outbox[shard] = []
                    self._handles[shard].send_hashed(sub_batch)
                    count += len(sub_batch)
            self._update_count += count
            return count

    def _update_many_plain(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Scalar-routing fallback for workers without a hashed ingest path."""
        groups: Dict[int, List[Tuple[Hashable, Hashable, float]]] = {}
        count = 0
        for source, destination, weight in items:
            count += 1
            # repro: allow(hash-once): scalar-routing fallback for workers
            # without a hashed ingest path; the hashed path routes whole
            # batches through HashedBatch.split_by_route.
            groups.setdefault(self.shard_of(source), []).append(
                (source, destination, weight)
            )
        for shard, triples in groups.items():
            outbox = self._outbox[shard]
            if outbox:
                outbox.extend(triples)
                self._handles[shard].send_batch(outbox)
                self._outbox[shard] = []
            else:
                self._handles[shard].send_batch(triples)
        self._update_count += count
        return count

    def _dispatch(self, shard: int, triples: List[Tuple[Hashable, Hashable, float]]) -> None:
        """Ship already-routed triples to one shard through the data plane.

        Built under the workers' own spec (no routing seed): the triples are
        already grouped by shard, so only node hashes are needed.
        """
        if self._shard_spec is not None:
            self._handles[shard].send_hashed(
                HashedBatch.from_items(
                    triples, self._shard_spec, node_memo=self._node_memo
                )
            )
        else:
            self._handles[shard].send_batch(triples)

    def ingest(self, edges) -> "ShardedSummary":
        """Feed an iterable of :class:`~repro.streaming.edge.StreamEdge`."""
        self.update_many((edge.source, edge.destination, edge.weight) for edge in edges)
        return self

    def flush(self) -> None:
        """Barrier: push client buffers out and wait for every queued batch.

        After ``flush`` returns, every shard has applied every item routed so
        far — the state a checkpoint snapshots and a throughput measurement
        must include.
        """
        with self._lock:
            self._ensure_open()
            self._send_outboxes()
            for handle in self._handles:
                handle.drain()
            if self._obs is not None:
                # The flush barrier is the natural collection point: every
                # worker is idle, so its snapshot covers all routed items.
                self._collect_worker_obs()

    def _send_outboxes(self, only: Optional[int] = None) -> None:
        shards = range(self.workers) if only is None else (only,)
        for shard in shards:
            if self._outbox[shard]:
                self._dispatch(shard, self._outbox[shard])
                self._outbox[shard] = []

    # -- query primitives ----------------------------------------------------

    def _ask_one(self, shard: int, method: str, *args):
        """Route one query to one shard (pending batches apply first: FIFO)."""
        with self._lock:
            self._ensure_open()
            self._send_outboxes(only=shard)
            return self._handles[shard].request(("call", method, args))

    def _ask_all(self, method: str, *args) -> List:
        """Scatter one query to every shard, then gather in shard order."""
        with self._lock:
            self._ensure_open()
            self._send_outboxes()
            for handle in self._handles:
                handle.send_request(("call", method, args))
            return [handle.collect() for handle in self._handles]

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Edge query served by the single shard owning ``source``."""
        return self._ask_one(self.shard_of(source), "edge_query", source, destination)

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Successor query served by the single shard owning ``node``."""
        return self._ask_one(self.shard_of(node), "successor_query", node)

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Precursor query: fans out to every shard and unions the answers."""
        merged: Set[Hashable] = set()
        for answer in self._ask_all("precursor_query", node):
            merged.update(answer)
        return merged

    def node_out_weight(self, node: Hashable) -> float:
        """Total out-going weight, served by the owning shard."""
        return self._ask_one(self.shard_of(node), "node_out_weight", node)

    def node_in_weight(self, node: Hashable) -> float:
        """Total in-coming weight, gathered from every shard."""
        return float(sum(self._ask_all("node_in_weight", node)))

    # -- introspection -------------------------------------------------------

    @property
    def update_count(self) -> int:
        """Number of stream items routed into the cluster."""
        return self._update_count

    def shard_ingest_stats(self) -> ShardIngestStats:
        """Cumulative per-shard routing stats (see :class:`ShardIngestStats`).

        ``items_routed`` counts every item handed to each shard (including
        items still sitting in client buffers or worker queues);
        ``queue_depth_high_water`` is the largest number of batches that were
        in flight to any single worker at once — the observable measure of
        routing imbalance and worker lag.
        """
        routed = [
            handle.items_routed + len(self._outbox[shard])
            for shard, handle in enumerate(self._handles)
        ]
        high_water = max((handle.high_water for handle in self._handles), default=0)
        return ShardIngestStats(items_routed=routed, queue_depth_high_water=high_water)

    def shard_memory_bytes(self) -> List[int]:
        """Per-shard memory footprint under the paper's C layout."""
        return [int(value) for value in self._ask_all("memory_bytes")]

    def memory_bytes(self) -> int:
        """Total memory of all shard summaries (the comparison unit)."""
        return sum(self.shard_memory_bytes())

    # -- telemetry -----------------------------------------------------------

    def _attach_obs_instruments(self) -> None:
        """Bind per-shard queue instruments to the handles (lock not needed:
        called from ``__init__`` or under :meth:`enable_obs`'s lock)."""
        for handle in self._handles:
            handle.obs_queue_wait = self._obs.histogram(
                "repro_cluster_queue_wait_seconds",
                "Time routing spent blocked on shard back-pressure "
                "(pipe drain or shm ring full).",
                shard=handle.worker_id,
            )
            handle.obs_items = self._obs.counter(
                "repro_cluster_items_routed_total",
                "Stream items routed to each shard by the parent.",
                shard=handle.worker_id,
            )

    def enable_obs(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Turn cluster telemetry on after construction (idempotent).

        Records into ``registry`` when given, else the globally-enabled
        trace registry, else a fresh private one.  Workers are switched on
        over the control pipes; the serve front end calls this so a cluster
        built before :func:`repro.obs.trace.enable` still reports.
        """
        with self._lock:
            self._ensure_open()
            if registry is not None:
                self._obs = registry
            elif self._obs is None:
                self._obs = obs_trace.active() or MetricsRegistry()
            self._attach_obs_instruments()
            for handle in self._handles:
                handle.request(("obs_enable",))
            return self._obs

    def _collect_worker_obs(self) -> None:
        """Refresh the cached merge of worker registries (lock held)."""
        snapshots = [handle.request(("obs",)) for handle in self._handles]
        self._obs_worker_cache = merge_snapshots(*snapshots)

    def _set_obs_gauges(self) -> None:
        """Publish point-in-time queue depths into the parent registry."""
        for handle in self._handles:
            self._obs.gauge(
                "repro_cluster_queue_depth",
                "Batches currently in flight to each shard worker.",
                shard=handle.worker_id,
            ).set(handle.pending)
            self._obs.gauge(
                "repro_cluster_queue_depth_high_water",
                "Largest number of batches ever in flight to each shard.",
                shard=handle.worker_id,
            ).set(handle.high_water)
        self._obs.gauge(
            "repro_cluster_update_count",
            "Stream items routed into the cluster since start.",
        ).set(self._update_count)

    def obs_snapshot(self, refresh: bool = False) -> Optional[Dict]:
        """Merged telemetry view: parent registry ⊕ cached worker snapshots.

        ``None`` when telemetry is off.  Worker snapshots are refreshed on
        every :meth:`flush`; pass ``refresh=True`` to pull them on demand
        (costs one pipe round-trip per worker).  The default path touches no
        pipes, so a metrics scrape can never block behind ingestion.
        """
        if self._obs is None:
            return None
        with self._lock:
            if refresh and not self._closed:
                self._collect_worker_obs()
            self._set_obs_gauges()
            parent = self._obs.snapshot()
            return merge_snapshots(parent, self._obs_worker_cache)

    def capabilities(self) -> Capabilities:
        """Cluster capabilities: the inner sketch's, minus single-sketch-only
        features (hash-level paths, in-place merging, window expiry)."""
        from repro.api.registry import sketch_info

        inner = sketch_info(self.inner_spec.sketch).capabilities
        return Capabilities(
            edge_queries=inner.edge_queries,
            successor_queries=inner.successor_queries,
            precursor_queries=inner.precursor_queries,
            node_out_weights=inner.node_out_weights,
            node_in_weights=inner.node_in_weights,
            deletions=inner.deletions,
            batched_updates=True,
            serializable=inner.serializable,
            mergeable=False,
            windowed=False,
            by_hash=False,
            triangle_estimates=False,
        )

    # -- persistence ---------------------------------------------------------

    def shard_snapshots(self) -> List[Dict]:
        """Snapshot every shard (after a flush) in shard order.

        The cluster lock is held across the flush *and* the collection of
        every shard's snapshot — the checkpoint read barrier: a query issued
        from another thread while a checkpoint is in progress blocks until
        the snapshots are consistent, so it can never observe a state where
        some shards have flushed batches the others have not.
        """
        with self._lock:
            self.flush()
            self._ensure_open()
            for handle in self._handles:
                handle.send_request(("snapshot",))
            return [handle.collect() for handle in self._handles]

    def snapshot_metadata(self) -> Dict:
        """The cluster's topology/bookkeeping state, without the shard data.

        The single source of the snapshot fields: :meth:`to_dict` embeds the
        shard snapshots next to it, and the checkpoint manifest
        (:mod:`repro.cluster.checkpoint`) stores it alongside per-shard
        files.
        """
        stats = self.shard_ingest_stats()
        return {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "sketch": "sharded-gss",
            "workers": self.workers,
            "routing_seed": self._routing_seed,
            "batch_size": self.batch_size,
            "update_count": self._update_count,
            "shard_items_routed": stats.items_routed,
            "inner_spec": {
                "sketch": self.inner_spec.sketch,
                "memory_bytes": self.inner_spec.memory_bytes,
                "expected_edges": self.inner_spec.expected_edges,
                "backend": self.inner_spec.backend,
                "seed": self.inner_spec.seed,
                "params": dict(self.inner_spec.params),
            },
        }

    def to_dict(self) -> Dict:
        """One self-contained snapshot document for the whole cluster.

        Embeds every shard's own snapshot plus the routing/bookkeeping state,
        so :meth:`from_dict` rebuilds a cluster that answers every query
        identically and continues ingesting from the same stream position.
        """
        document = self.snapshot_metadata()
        document["shards"] = self.shard_snapshots()
        return document

    @classmethod
    def from_dict(cls, document: Dict, backend: Optional[str] = None) -> "ShardedSummary":
        """Rebuild a cluster from a :meth:`to_dict` document.

        ``backend`` optionally re-targets every shard onto a different matrix
        backend (threaded through the shards' own ``from_dict``).
        """
        from repro.api.registry import SketchSpec

        if document.get("sketch") != "sharded-gss":
            raise ValueError(
                f"not a sharded-gss snapshot (sketch={document.get('sketch')!r})"
            )
        if document.get("format_version") != SNAPSHOT_FORMAT_VERSION:
            raise ValueError(
                "unsupported sharded-gss snapshot version "
                f"{document.get('format_version')!r}"
            )
        shards = document["shards"]
        if len(shards) != document["workers"]:
            raise ValueError(
                f"snapshot names {document['workers']} workers but carries "
                f"{len(shards)} shard documents"
            )
        inner = dict(document["inner_spec"])
        if backend is not None:
            inner["backend"] = backend
        spec = SketchSpec(
            inner["sketch"],
            memory_bytes=inner.get("memory_bytes"),
            expected_edges=inner.get("expected_edges"),
            backend=inner.get("backend", "python"),
            seed=inner.get("seed", 0),
            params=inner.get("params", {}),
        )
        cluster = cls(
            spec,
            workers=document["workers"],
            routing_seed=document["routing_seed"],
            batch_size=document.get("batch_size", 1024),
            shard_snapshots=shards,
            snapshot_backend=backend,
        )
        cluster._update_count = document.get("update_count", 0)
        for handle, routed in zip(
            cluster._handles, document.get("shard_items_routed", [])
        ):
            handle.items_routed = routed
        return cluster

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the cluster's worker processes have been shut down."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ClusterError("the cluster has been closed")

    def close(self) -> None:
        """Flush nothing, stop every worker, and release the pipes.

        Pending batches a worker has already received are applied before its
        ``stop`` request (FIFO), but items still in client buffers are
        dropped — call :meth:`flush` (or checkpoint) first when the state
        matters.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for handle in self._handles:
                try:
                    handle.stop()
                except Exception:  # pragma: no cover - best-effort teardown
                    pass

    def shutdown(self, checkpoint_dir: Optional[Union[str, "Path"]] = None) -> None:
        """Graceful stop: drain in-flight batches, checkpoint, release workers.

        Unlike :meth:`close` — which drops whatever still sits in the
        client-side outboxes — ``shutdown`` first pushes every buffered item
        out and waits for the workers to apply it, then (when
        ``checkpoint_dir`` is given) writes a consistent checkpoint, and only
        then stops the workers and unlinks the shared-memory rings.  This is
        what SIGINT/SIGTERM handlers should call (see
        :func:`repro.cluster.install_signal_handlers`).  Idempotent: a
        second call (or a call on an already-closed cluster) is a no-op.
        """
        with self._lock:
            if self._closed:
                return
            self.flush()
            if checkpoint_dir is not None:
                # Imported here: repro.cluster.checkpoint imports this module.
                from repro.cluster.checkpoint import save_checkpoint

                save_checkpoint(self, checkpoint_dir)
            self.close()

    def kill(self) -> None:
        """Hard-terminate every worker without flushing (crash simulation)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for handle in self._handles:
                handle.kill()

    def __enter__(self) -> "ShardedSummary":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass
