"""Tests for the command-line front-end."""

import pytest

from repro.cli import build_parser, config_from_args, main


class TestParser:
    def test_experiment_choices_cover_all_artifacts(self):
        parser = build_parser()
        args = parser.parse_args(["fig8"])
        assert args.experiment == "fig8"
        for name in ("fig3", "fig9", "fig10", "fig11", "fig12", "fig13", "tab1", "fig14", "fig15"):
            assert parser.parse_args([name]).experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_config_from_args_quick(self):
        args = build_parser().parse_args(["fig8", "--quick"])
        config = config_from_args(args)
        assert config.dataset_scale < 0.1

    def test_config_from_args_scale_and_datasets(self):
        args = build_parser().parse_args(
            ["fig8", "--scale", "0.5", "--datasets", "cit-HepPh"]
        )
        config = config_from_args(args)
        assert config.dataset_scale == 0.5
        assert config.datasets == ("cit-HepPh",)

    def test_quick_and_paper_scale_exclusive(self):
        args = build_parser().parse_args(["fig8", "--quick", "--paper-scale"])
        with pytest.raises(SystemExit):
            config_from_args(args)


class TestMain:
    def test_fig3_prints_table(self, capsys):
        assert main(["fig3", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "fig3" in output
        assert "correct_rate" in output

    def test_fig13_quick_run(self, capsys):
        assert main(["fig13", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Room=2" in output
        assert "NoSquareHash" in output


class TestBackendFlag:
    def test_default_backend_is_python(self):
        args = build_parser().parse_args(["tab1", "--quick"])
        assert config_from_args(args).backend == "python"

    def test_backend_flag_threads_into_config(self):
        args = build_parser().parse_args(["tab1", "--quick", "--backend", "auto"])
        assert config_from_args(args).backend == "auto"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tab1", "--backend", "fortran"])

    def test_tab1_runs_on_each_available_backend(self, capsys):
        from repro.core.backends import NUMPY_AVAILABLE

        backends = ["python"] + (["numpy"] if NUMPY_AVAILABLE else [])
        for backend in backends:
            assert main(["tab1", "--quick", "--backend", backend]) == 0
            output = capsys.readouterr().out
            assert f"backend={backend}" in output
            assert "GSS(update_many)" in output
            assert "TCM(update_many)" in output


class TestWorkersFlag:
    def test_default_is_no_cluster_row(self):
        config = config_from_args(build_parser().parse_args(["tab1"]))
        assert config.workers == 0

    def test_workers_flag_threads_into_config(self):
        config = config_from_args(build_parser().parse_args(["tab1", "--workers", "2"]))
        assert config.workers == 2

    def test_workers_must_be_positive(self):
        args = build_parser().parse_args(["tab1", "--workers", "0"])
        with pytest.raises(SystemExit):
            config_from_args(args)

    def test_tab1_grows_cluster_row(self, capsys):
        assert main(["tab1", "--quick", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "sharded-gss(workers=2)" in out

    def test_json_records_workers(self, tmp_path, capsys):
        target = tmp_path / "tab1.json"
        assert main(
            ["tab1", "--quick", "--workers", "2", "--json", str(target)]
        ) == 0
        import json

        document = json.loads(target.read_text())
        assert document["workers"] == 2
        structures = {
            row["structure"]
            for experiment in document["experiments"]
            for row in experiment["rows"]
        }
        assert "sharded-gss(workers=2)" in structures


class TestJsonOutput:
    def test_json_written_to_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "tab1.json"
        assert main(["tab1", "--quick", "--json", str(path)]) == 0
        capsys.readouterr()
        document = json.loads(path.read_text())
        assert document["format"] == "repro-gss-bench"
        assert document["backend"] == "python"
        assert document["experiments"][0]["experiment"] == "tab1"
        rows = document["experiments"][0]["rows"]
        structures = {row["structure"] for row in rows}
        assert "GSS(update_many)" in structures
        assert all(row["edges_per_second"] > 0 for row in rows)

    def test_json_to_stdout(self, capsys):
        import json

        assert main(["fig3", "--quick", "--json", "-"]) == 0
        output = capsys.readouterr().out
        start = output.index("{")
        document = json.loads(output[start:])
        assert document["format"] == "repro-gss-bench"


class TestJsonBackendMetadata:
    def test_json_records_resolved_backend_for_auto(self, tmp_path, capsys):
        import json

        from repro.core.backends import NUMPY_AVAILABLE, resolve_backend_name

        path = tmp_path / "auto.json"
        assert main(["fig3", "--quick", "--backend", "auto", "--json", str(path)]) == 0
        capsys.readouterr()
        document = json.loads(path.read_text())
        assert document["backend_requested"] == "auto"
        # auto prefers native > numpy > python, depending on availability.
        assert document["backend"] == resolve_backend_name("auto")
        assert document["backend"] != "auto"
        if not NUMPY_AVAILABLE:
            assert document["backend"] == "python"


class TestSketchFlag:
    def test_sketch_flag_threads_into_config(self):
        args = build_parser().parse_args(["fig8", "--quick", "--sketch", "cm", "--sketch", "cu"])
        config = config_from_args(args)
        assert config.extra_sketches == ("cm", "cu")

    def test_unknown_sketch_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--sketch", "nope"])

    def test_fig8_grows_equal_memory_rows(self, capsys):
        assert main(["fig8", "--quick", "--sketch", "cm"]) == 0
        output = capsys.readouterr().out
        assert "cm(equal memory)" in output

    def test_tab1_grows_equal_memory_rows(self, capsys):
        assert main(["tab1", "--quick", "--sketch", "gmatrix"]) == 0
        output = capsys.readouterr().out
        assert "gmatrix(equal memory)" in output

    def test_topology_experiment_rejects_topology_free_sketch(self):
        with pytest.raises(SystemExit, match="does not support successor_queries"):
            main(["fig10", "--quick", "--sketch", "cm"])

    def test_multi_experiment_runs_skip_unsupported_combinations(self, capsys):
        # In an 'extensions'-style multi-run the sketch rides through the
        # experiments that support it and is skipped elsewhere (the single
        # 'memory' runner has no extra-sketch rows; what matters is that the
        # run completes without the mid-run error of the strict mode).
        assert main(["all", "--quick", "--sketch", "cm"]) == 0
        output = capsys.readouterr().out
        assert "cm(equal memory)" in output          # fig8/tab1 rows present
        assert "fig10" in output                     # topology figs still ran

    def test_budget_only_sketches_in_choices(self):
        # windowed-gss needs a window span no experiment can infer, so it is
        # not offered for --sketch.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--sketch", "windowed-gss"])


class TestSketchesListing:
    def test_sketches_prints_registry(self, capsys):
        assert main(["sketches"]) == 0
        output = capsys.readouterr().out
        for name in ("gss", "tcm", "gmatrix", "cm", "cu", "triest-impr"):
            assert name in output
        assert "capabilities" in output

    def test_sketches_json_document(self, tmp_path, capsys):
        import json

        path = tmp_path / "sketches.json"
        assert main(["sketches", "--json", str(path)]) == 0
        capsys.readouterr()
        document = json.loads(path.read_text())
        assert document["format"] == "repro-gss-sketches"
        names = {row["sketch"] for row in document["sketches"]}
        assert {"gss", "tcm", "cm"} <= names

    def test_single_experiment_without_sketch_rows_errors(self):
        with pytest.raises(SystemExit, match="no --sketch comparison rows"):
            main(["window", "--quick", "--sketch", "cm"])


class TestServeSubcommand:
    """The ``serve`` sub-command's parser (the server itself is exercised by
    ``tests/test_serve.py``; here we pin the CLI surface)."""

    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8750
        assert args.workers == 2
        assert args.transport == "auto"
        assert args.backend == "python"
        assert args.credits == 8
        assert args.max_inflight == 64
        assert args.checkpoint_dir is None
        assert not args.restore

    def test_serve_flags_parse(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args(
            ["--workers", "4", "--transport", "pipe", "--port", "0",
             "--memory-bytes", "65536", "--checkpoint-dir", "/tmp/ck"]
        )
        assert args.workers == 4
        assert args.transport == "pipe"
        assert args.memory_bytes == 65536
        assert args.checkpoint_dir == "/tmp/ck"

    def test_sizing_flags_mutually_exclusive(self):
        from repro.cli import build_serve_parser

        with pytest.raises(SystemExit):
            build_serve_parser().parse_args(
                ["--expected-edges", "10", "--memory-bytes", "10"]
            )

    def test_restore_needs_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="--checkpoint-dir"):
            main(["serve", "--restore"])

    def test_serve_not_an_experiment_choice(self):
        # 'serve' is intercepted before the experiment parser; the experiment
        # positional itself does not accept it.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
