"""Exact windowed subgraph matching — the SJ-tree stand-in.

The paper compares GSS against SJ-tree (Choudhury et al.) for subgraph
matching inside windows of the stream.  SJ-tree is an *exact* algorithm, so
any exact matcher produces the same reference answers; we therefore implement
a straightforward windowed matcher on top of the exact adjacency-list store
and the VF2-style search in :mod:`repro.queries.subgraph`.  Its role in the
Figure 15 experiment is to provide the ground-truth matches (always a correct
rate of 1.0) and an update-throughput reference.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.queries.subgraph import LabeledDiGraph, Pattern, SubgraphMatcher
from repro.streaming.stream import GraphStream


class WindowedExactMatcher:
    """Exact labeled subgraph matching over a stream window."""

    def __init__(self, window: GraphStream) -> None:
        self.window = window
        self._graph = LabeledDiGraph.from_stream(window)
        self._update_count = len(window)

    @property
    def graph(self) -> LabeledDiGraph:
        """The exact labeled digraph of the window."""
        return self._graph

    def find_match(self, pattern: Pattern) -> Optional[Dict[str, Hashable]]:
        """Return one embedding of ``pattern`` (or ``None`` if absent)."""
        matcher = SubgraphMatcher(self._graph)
        return matcher.find_one(pattern)

    def count_matches(self, pattern: Pattern, limit: int = 1000) -> int:
        """Count embeddings of ``pattern`` up to ``limit``."""
        matcher = SubgraphMatcher(self._graph)
        return matcher.count(pattern, limit=limit)

    def contains_edges(self, edges: List[Tuple[Hashable, Hashable]]) -> bool:
        """True when every (source, destination) pair exists in the window."""
        return all(self._graph.has_edge(source, destination) for source, destination in edges)

    @property
    def update_count(self) -> int:
        """Number of window items ingested."""
        return self._update_count
