"""Synthetic graph-stream generators with power-law degree skew.

Each generator produces a :class:`~repro.streaming.stream.GraphStream` whose
shape mirrors one family of graphs from the paper's evaluation:

* ``communication_stream`` — email / mailing-list / network-flow style
  streams: heavy-tailed sender and receiver popularity, many repeated edges
  with Zipfian multiplicity, timestamps in arrival order.
* ``citation_stream`` — citation-graph style: nodes arrive over time and cite
  mostly earlier, preferentially-attached nodes; few duplicate edges.
* ``web_stream`` — web-graph style: strong hub structure on both in- and
  out-degree, locally clustered links.
* ``power_law_stream`` — the generic generator the three above parameterize.

The accuracy of GSS and of the baselines depends on |V|, |E|, the degree skew
and the duplicate-edge multiplicity, which these generators control directly;
this is what makes them acceptable substitutes for the original datasets (see
DESIGN.md, Substitutions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.zipf import ZipfSampler
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


@dataclass(frozen=True)
class SyntheticGraphSpec:
    """Parameters of a synthetic graph-stream generator.

    ``node_count`` approximates |V|, ``edge_count`` the number of *distinct*
    directed edges, ``duplication`` the average number of extra stream items
    per distinct edge (so the stream has roughly
    ``edge_count * (1 + duplication)`` items), and ``skew`` the Zipf exponent
    of node popularity.
    """

    name: str
    node_count: int
    edge_count: int
    duplication: float = 0.5
    skew: float = 1.1
    weight_exponent: float = 1.5
    weight_support: int = 50
    seed: int = 7


def _popular_node(sampler: ZipfSampler, permutation: List[int]) -> int:
    """Draw a node index with Zipfian popularity under a fixed permutation."""
    return permutation[sampler.sample() - 1]


def power_law_stream(spec: SyntheticGraphSpec) -> GraphStream:
    """Generate a stream whose in/out-degree distributions are heavy tailed.

    Distinct edges are drawn by sampling both endpoints from independent
    Zipfian popularity rankings (rejecting self loops and duplicates), then the
    stream is built by replaying each distinct edge ``1 + extra`` times where
    ``extra`` follows a Zipf distribution capped by ``duplication``.
    """
    rng = random.Random(spec.seed)
    node_ids = [f"n{i}" for i in range(spec.node_count)]

    out_permutation = list(range(spec.node_count))
    in_permutation = list(range(spec.node_count))
    rng.shuffle(out_permutation)
    rng.shuffle(in_permutation)

    out_sampler = ZipfSampler(spec.skew, spec.node_count, random.Random(spec.seed + 1))
    in_sampler = ZipfSampler(spec.skew, spec.node_count, random.Random(spec.seed + 2))
    weight_sampler = ZipfSampler(
        spec.weight_exponent, spec.weight_support, random.Random(spec.seed + 3)
    )

    distinct: set = set()
    distinct_order: List[tuple] = []
    attempts = 0
    max_attempts = spec.edge_count * 50
    while len(distinct) < spec.edge_count and attempts < max_attempts:
        attempts += 1
        source_index = _popular_node(out_sampler, out_permutation)
        destination_index = _popular_node(in_sampler, in_permutation)
        if source_index == destination_index:
            continue
        key = (source_index, destination_index)
        if key in distinct:
            continue
        distinct.add(key)
        distinct_order.append(key)

    items: List[StreamEdge] = []
    for key in distinct_order:
        source = node_ids[key[0]]
        destination = node_ids[key[1]]
        repeats = 1
        if spec.duplication > 0:
            extra = weight_sampler.sample() - 1
            repeats += min(extra, max(1, int(spec.duplication * 4)))
        for _ in range(repeats):
            items.append(
                StreamEdge(
                    source=source,
                    destination=destination,
                    weight=float(weight_sampler.sample()),
                    timestamp=0.0,
                )
            )

    rng.shuffle(items)
    stamped = [
        StreamEdge(
            source=item.source,
            destination=item.destination,
            weight=item.weight,
            timestamp=float(position),
            label=item.label,
        )
        for position, item in enumerate(items)
    ]
    return GraphStream(stamped, name=spec.name)


def communication_stream(
    node_count: int,
    edge_count: int,
    name: str = "communication",
    seed: int = 11,
    duplication: float = 1.5,
) -> GraphStream:
    """Email / mailing-list / flow-trace analog: highly skewed, many repeats."""
    spec = SyntheticGraphSpec(
        name=name,
        node_count=node_count,
        edge_count=edge_count,
        duplication=duplication,
        skew=1.2,
        weight_exponent=1.4,
        seed=seed,
    )
    return power_law_stream(spec)


def citation_stream(
    node_count: int,
    edge_count: int,
    name: str = "citation",
    seed: int = 13,
) -> GraphStream:
    """Citation-graph analog: nodes cite earlier nodes, few duplicate edges.

    A simple preferential-attachment process: node ``i`` emits a batch of
    citations to earlier nodes, preferring nodes that already gathered many
    citations.  Produces a dense core of highly cited papers like cit-HepPh.
    """
    rng = random.Random(seed)
    node_ids = [f"p{i}" for i in range(node_count)]
    citations_per_node = max(1, edge_count // max(1, node_count))
    in_degree_pool: List[int] = []
    edges: List[StreamEdge] = []
    seen: set = set()
    weight_sampler = ZipfSampler(1.5, 30, random.Random(seed + 1))

    for index in range(1, node_count):
        batch = citations_per_node
        for _ in range(batch):
            if len(edges) >= edge_count:
                break
            if in_degree_pool and rng.random() < 0.7:
                target_index = in_degree_pool[rng.randrange(len(in_degree_pool))]
            else:
                target_index = rng.randrange(index)
            key = (index, target_index)
            if key in seen or target_index == index:
                continue
            seen.add(key)
            in_degree_pool.append(target_index)
            edges.append(
                StreamEdge(
                    source=node_ids[index],
                    destination=node_ids[target_index],
                    weight=float(weight_sampler.sample()),
                    timestamp=float(len(edges)),
                )
            )
        if len(edges) >= edge_count:
            break
    return GraphStream(edges, name=name)


def web_stream(
    node_count: int,
    edge_count: int,
    name: str = "web",
    seed: int = 17,
) -> GraphStream:
    """Web-graph analog: hub-and-authority structure with local clustering."""
    spec = SyntheticGraphSpec(
        name=name,
        node_count=node_count,
        edge_count=edge_count,
        duplication=0.2,
        skew=1.3,
        weight_exponent=1.6,
        seed=seed,
    )
    return power_law_stream(spec)


def labeled_stream(stream: GraphStream, label_count: int = 8, seed: int = 23) -> GraphStream:
    """Attach categorical labels to a stream's edges.

    The subgraph-matching experiment labels edges by port/protocol; we mimic
    that by assigning one of ``label_count`` labels per distinct edge.
    """
    rng = random.Random(seed)
    label_of: dict = {}
    labeled: List[StreamEdge] = []
    for edge in stream:
        if edge.key not in label_of:
            label_of[edge.key] = f"L{rng.randrange(label_count)}"
        labeled.append(
            StreamEdge(
                source=edge.source,
                destination=edge.destination,
                weight=edge.weight,
                timestamp=edge.timestamp,
                label=label_of[edge.key],
            )
        )
    return GraphStream(labeled, name=stream.name)


def unreachable_pairs(
    stream: GraphStream, count: int, seed: int = 31, max_attempts: Optional[int] = None
) -> List[tuple]:
    """Sample node pairs (s, d) such that d is NOT reachable from s.

    Used to build the reachability query sets of Figure 12, which contain only
    unreachable pairs so that true-negative recall is well defined.
    """
    from collections import deque

    successors = stream.successors()
    nodes = stream.nodes()
    rng = random.Random(seed)
    pairs: List[tuple] = []
    attempts = 0
    limit = max_attempts if max_attempts is not None else count * 200

    reachable_cache: dict = {}

    def reachable_from(source) -> set:
        if source in reachable_cache:
            return reachable_cache[source]
        visited = {source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in successors.get(current, ()):  # pragma: no branch
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
        reachable_cache[source] = visited
        return visited

    while len(pairs) < count and attempts < limit:
        attempts += 1
        source = nodes[rng.randrange(len(nodes))]
        destination = nodes[rng.randrange(len(nodes))]
        if source == destination:
            continue
        if destination in reachable_from(source):
            continue
        pairs.append((source, destination))
    return pairs
