"""The :class:`GraphSummary` protocol — the contract every sketch satisfies.

The paper's Definition 4 fixes three query primitives; this module widens that
into the full production contract shared by every summary structure in the
package (GSS and its deployment wrappers, TCM, gMatrix, CM/CU, gSketch, the
TRIEST adapter):

* ``update`` / ``update_many`` — apply stream items, scalar or batched;
* ``edge_query`` — ``Optional[float]``: the estimated aggregate weight, or
  ``None`` when the edge is absent (the paper's ``-1.0`` sentinel is
  deprecated because it collides with a deleted-down-to ``-1.0`` edge);
* ``successor_query`` / ``precursor_query`` — 1-hop neighbourhoods over
  original node IDs;
* ``node_out_weight`` / ``node_in_weight`` — aggregate node weights;
* ``memory_bytes`` — the structure's footprint under the paper's C layout,
  the quantity the equal-memory comparisons hold constant;
* ``to_dict`` (+ the ``from_dict`` classmethod convention) — checkpointing;
* ``capabilities`` — a :class:`Capabilities` descriptor declaring which of
  the optional parts actually work.

Structures that do not support an optional query raise
:class:`UnsupportedQueryError` (and report ``False`` in the matching
capability flag) rather than returning a wrong answer.  The conformance suite
(``tests/test_api_conformance.py``) holds every registered sketch to this.

``Capabilities`` and ``UnsupportedQueryError`` are defined in
:mod:`repro.queries.primitives` so that core modules can import them without
depending on the public API package; they are re-exported here.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Protocol, Set, Tuple, runtime_checkable

from repro.queries.primitives import (  # noqa: F401  (re-exports)
    Capabilities,
    ShardIngestStats,
    SummaryShims,
    GraphQueryInterface,
    UnsupportedQueryError,
)

__all__ = [
    "Capabilities",
    "ShardIngestStats",
    "SummaryShims",
    "GraphQueryInterface",
    "GraphSummary",
    "UnsupportedQueryError",
]


@runtime_checkable
class GraphSummary(Protocol):
    """Structural protocol of a graph-stream summary.

    Every object returned by :func:`repro.api.build` satisfies this protocol
    (``isinstance(summary, GraphSummary)`` holds — the class is
    ``runtime_checkable``).  Optional queries may raise
    :class:`UnsupportedQueryError`; consult :meth:`capabilities` before
    relying on them.
    """

    # -- updates -----------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Apply one stream item (add ``weight`` to edge ``source -> destination``)."""

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch of ``(source, destination, weight)`` items; return the count."""

    # -- query primitives --------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Estimated aggregate weight of the edge, or ``None`` when absent."""

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Original node IDs 1-hop reachable from ``node``."""

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Original node IDs that reach ``node`` in one hop."""

    # -- compound queries --------------------------------------------------

    def node_out_weight(self, node: Hashable) -> float:
        """Aggregate weight of the out-going edges of ``node``."""

    def node_in_weight(self, node: Hashable) -> float:
        """Aggregate weight of the in-coming edges of ``node``."""

    # -- introspection and persistence -------------------------------------

    def memory_bytes(self) -> int:
        """Memory footprint under the paper's C layout (the comparison unit)."""

    def capabilities(self) -> Capabilities:
        """Which optional protocol features this structure supports."""

    def to_dict(self) -> Dict:
        """Snapshot document (JSON-compatible); classes with
        ``capabilities().serializable`` false raise
        :class:`UnsupportedQueryError`.  Serializable classes also provide a
        ``from_dict(document)`` classmethod; :func:`repro.api.from_dict`
        dispatches on the document's ``"sketch"`` tag."""
