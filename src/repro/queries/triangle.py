"""Triangle counting on top of the query primitives.

The paper's Figure 14 compares GSS against TRIEST for global triangle
counting.  GSS does not have a dedicated triangle algorithm: the neighbourhood
of every node is recovered with successor/precursor queries and triangles are
counted on the resulting undirected adjacency, exactly as one would run any
static-graph algorithm over the reconstructed sketch.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set

from repro.queries.primitives import GraphQueryInterface


def undirected_neighbors(
    store: GraphQueryInterface, nodes: Iterable[Hashable]
) -> Dict[Hashable, Set[Hashable]]:
    """Undirected adjacency restricted to ``nodes``: successors ∪ precursors."""
    node_set = set(nodes)
    adjacency: Dict[Hashable, Set[Hashable]] = {node: set() for node in node_set}
    for node in node_set:
        neighbors = store.successor_query(node) | store.precursor_query(node)
        for neighbor in neighbors:
            if neighbor in node_set and neighbor != node:
                adjacency[node].add(neighbor)
                adjacency[neighbor].add(node)
    return adjacency


def count_triangles_in_adjacency(adjacency: Dict[Hashable, Set[Hashable]]) -> int:
    """Count triangles in an undirected adjacency map.

    Each triangle is counted exactly once by imposing a total order on nodes
    (their enumeration rank) and only counting ordered triples.
    """
    rank = {node: position for position, node in enumerate(adjacency)}
    triangles = 0
    for node, neighbors in adjacency.items():
        higher = {neighbor for neighbor in neighbors if rank[neighbor] > rank[node]}
        for neighbor in higher:
            # only count the third vertex when it ranks above both endpoints,
            # so each triangle is seen exactly once (at its lowest-rank vertex,
            # through its middle-rank vertex).
            triangles += sum(
                1
                for third in higher & adjacency[neighbor]
                if rank[third] > rank[neighbor]
            )
    return triangles


def count_triangles(store: GraphQueryInterface, nodes: Iterable[Hashable]) -> int:
    """Count triangles of the summarized graph restricted to ``nodes``."""
    return count_triangles_in_adjacency(undirected_neighbors(store, nodes))
