"""Scaling out: multi-process sharded ingestion with checkpoint/recovery.

The scenario: a traffic-analysis service ingests an edge stream too fast for
one process, so it runs a ``sharded-gss`` cluster — N worker processes, each
owning one GSS shard, fed through pipelined batches (see the README's
"Scaling out" section).  Mid-stream the whole cluster crashes; the operator
restores the latest checkpoint and replays the stream from the recorded
position, ending in exactly the state an uninterrupted run would have
reached.

Run with::

    PYTHONPATH=src python examples/cluster_recovery.py
"""

from __future__ import annotations

import tempfile

from repro.api import StreamSession, build
from repro.cluster import load_checkpoint, save_checkpoint
from repro.datasets.registry import load_dataset


def main() -> None:
    stream = load_dataset("email-EuAll", scale=0.1)
    edges = list(stream)
    half = len(edges) // 2
    print(f"stream: {len(edges)} items, {stream.statistics().distinct_edges} distinct edges")

    # One factory call builds the whole cluster; the memory budget is split
    # evenly across the worker processes.
    cluster = build("sharded-gss", memory_bytes=256 * 1024, params={"workers": 2})

    # --- normal operation: ingest, watch the routing ------------------------
    session = StreamSession(cluster, batch_size=512)
    report = session.feed(edges[:half])
    print(
        f"ingested {report.items} items at {report.items_per_second:,.0f} items/s; "
        f"shard routing {report.shard_items} "
        f"(imbalance {report.routing_imbalance:.2f}), "
        f"queue high-water {report.queue_depth_high_water}"
    )

    with tempfile.TemporaryDirectory(prefix="gss-cluster-") as directory:
        # --- periodic checkpoint, then a crash ------------------------------
        manifest = save_checkpoint(cluster, directory)
        print(f"checkpoint written: {manifest}")
        cluster.kill()  # simulate the whole cluster dying, no graceful exit
        print("cluster crashed (workers killed)")

        # --- recovery: restore and replay from the recorded position --------
        restored = load_checkpoint(directory)
        print(f"restored cluster at update_count={restored.update_count}")
        StreamSession(restored, batch_size=512).feed(edges[half:])

    # The resumed summary serves the full query surface.
    busiest = max(stream.nodes(), key=lambda node: len(stream.successors().get(node, ())))
    print(
        f"node {busiest!r}: out-weight {restored.node_out_weight(busiest):.0f}, "
        f"{len(restored.successor_query(busiest))} successors, "
        f"{len(restored.precursor_query(busiest))} precursors"
    )
    restored.close()
    print("done: crash-recovery run answered from the restored state")


if __name__ == "__main__":
    main()
