"""Unit tests for GSS persistence (save/load round trips)."""

import json

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.core.serialization import (
    FORMAT_VERSION,
    load_sketch,
    save_sketch,
    sketch_from_dict,
    sketch_to_dict,
)


@pytest.fixture()
def populated_sketch(small_stream) -> GSS:
    config = GSSConfig(
        matrix_width=20, fingerprint_bits=12, sequence_length=8, candidate_buckets=8
    )
    return GSS(config).ingest(small_stream)


class TestDictRoundTrip:
    def test_round_trip_preserves_edge_queries(self, populated_sketch, small_stream):
        restored = sketch_from_dict(sketch_to_dict(populated_sketch))
        for key in list(small_stream.aggregate_weights())[:300]:
            assert restored.edge_query(*key) == populated_sketch.edge_query(*key)

    def test_round_trip_preserves_neighbor_queries(self, populated_sketch, small_stream):
        restored = sketch_from_dict(sketch_to_dict(populated_sketch))
        for node in small_stream.nodes()[:60]:
            assert restored.successor_query(node) == populated_sketch.successor_query(node)
            assert restored.precursor_query(node) == populated_sketch.precursor_query(node)

    def test_round_trip_preserves_counters(self, populated_sketch):
        restored = sketch_from_dict(sketch_to_dict(populated_sketch))
        assert restored.matrix_edge_count == populated_sketch.matrix_edge_count
        assert restored.buffer_edge_count == populated_sketch.buffer_edge_count
        assert restored.update_count == populated_sketch.update_count
        assert restored.config == populated_sketch.config

    def test_restored_sketch_accepts_new_updates(self, populated_sketch):
        restored = sketch_from_dict(sketch_to_dict(populated_sketch))
        restored.update("brand-new-source", "brand-new-destination", 7.0)
        assert restored.edge_query("brand-new-source", "brand-new-destination") == 7.0

    def test_document_is_json_serializable(self, populated_sketch):
        document = sketch_to_dict(populated_sketch)
        assert document["format_version"] == FORMAT_VERSION
        json.dumps(document)  # must not raise

    def test_unknown_version_rejected(self, populated_sketch):
        document = sketch_to_dict(populated_sketch)
        document["format_version"] = 999
        with pytest.raises(ValueError):
            sketch_from_dict(document)

    def test_without_node_index(self, populated_sketch, small_stream):
        document = sketch_to_dict(populated_sketch, include_node_index=False)
        assert "node_index" not in document
        restored = sketch_from_dict(document)
        key = next(iter(small_stream.aggregate_weights()))
        assert restored.edge_query(*key) == populated_sketch.edge_query(*key)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path, populated_sketch, small_stream):
        path = tmp_path / "sketch.json"
        save_sketch(populated_sketch, path)
        restored = load_sketch(path)
        truth = small_stream.aggregate_weights()
        for key in list(truth)[:200]:
            assert restored.edge_query(*key) == populated_sketch.edge_query(*key)
        assert restored.buffer_edge_count == populated_sketch.buffer_edge_count


class TestHashVersionGuard:
    def test_snapshot_records_hash_version(self, populated_sketch):
        from repro.hashing.hash_functions import HASH_VERSION

        assert sketch_to_dict(populated_sketch)["hash_version"] == HASH_VERSION

    def test_newer_hash_version_rejected(self, populated_sketch):
        document = sketch_to_dict(populated_sketch)
        document["hash_version"] = 99
        with pytest.raises(ValueError, match="hash version"):
            sketch_from_dict(document)

    def test_older_hash_version_warns_but_loads(self, populated_sketch):
        import warnings

        document = sketch_to_dict(populated_sketch)
        document["hash_version"] = 1
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            restored = sketch_from_dict(document)
        assert any("hash version" in str(w.message) for w in caught)
        assert restored.update_count == populated_sketch.update_count

    def test_missing_hash_version_treated_as_v1(self, populated_sketch):
        import warnings

        document = sketch_to_dict(populated_sketch)
        del document["hash_version"]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sketch_from_dict(document)
        assert any("hash version" in str(w.message) for w in caught)
