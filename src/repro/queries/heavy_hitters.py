"""Heavy-hitter queries over graph summaries.

The gMatrix paper extends graph-stream summaries to "edge heavy hitters and so
on"; GSS supports the same style of query by composing the primitives, which is
exactly what the network-traffic use case needs (find the heaviest flows and
the busiest hosts).  Because the underlying estimates never under-count, a
heavy hitter is never missed — the reported set can only contain extra
candidates whose estimate was inflated by collisions.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Tuple

from repro.queries.node_query import node_in_weight, node_out_weight
from repro.queries.primitives import GraphQueryInterface


def heavy_edges(
    store: GraphQueryInterface,
    candidate_edges: Iterable[Tuple[Hashable, Hashable]],
    threshold: float,
) -> List[Tuple[Hashable, Hashable, float]]:
    """Edges whose estimated weight reaches ``threshold``.

    ``candidate_edges`` is the set of edges to test (typically the distinct
    edges of the stream, or the edges incident to a node under investigation).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    result = []
    for source, destination in candidate_edges:
        weight = store.edge_query(source, destination)
        if weight is not None and weight >= threshold:
            result.append((source, destination, weight))
    result.sort(key=lambda item: item[2], reverse=True)
    return result


def top_k_edges(
    store: GraphQueryInterface,
    candidate_edges: Iterable[Tuple[Hashable, Hashable]],
    k: int,
) -> List[Tuple[Hashable, Hashable, float]]:
    """The ``k`` candidate edges with the largest estimated weight."""
    if k <= 0:
        raise ValueError("k must be positive")
    weighted = []
    for source, destination in candidate_edges:
        weight = store.edge_query(source, destination)
        if weight is not None:
            weighted.append((source, destination, weight))
    weighted.sort(key=lambda item: item[2], reverse=True)
    return weighted[:k]


def heavy_nodes(
    store: GraphQueryInterface,
    candidate_nodes: Iterable[Hashable],
    threshold: float,
    direction: str = "out",
) -> List[Tuple[Hashable, float]]:
    """Nodes whose aggregated out- (or in-) weight reaches ``threshold``."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if direction not in ("out", "in"):
        raise ValueError("direction must be 'out' or 'in'")
    aggregate = node_out_weight if direction == "out" else node_in_weight
    result = [
        (node, weight)
        for node in candidate_nodes
        if (weight := aggregate(store, node)) >= threshold
    ]
    result.sort(key=lambda item: item[1], reverse=True)
    return result


def top_k_nodes(
    store: GraphQueryInterface,
    candidate_nodes: Iterable[Hashable],
    k: int,
    direction: str = "out",
) -> List[Tuple[Hashable, float]]:
    """The ``k`` candidate nodes with the largest aggregated weight."""
    if k <= 0:
        raise ValueError("k must be positive")
    if direction not in ("out", "in"):
        raise ValueError("direction must be 'out' or 'in'")
    aggregate = node_out_weight if direction == "out" else node_in_weight
    weighted = [(node, aggregate(store, node)) for node in candidate_nodes]
    weighted.sort(key=lambda item: item[1], reverse=True)
    return weighted[:k]
