"""Deterministic node hashing for graph sketches.

The graph sketch maps every node ``v`` of the streaming graph to a hash value
``H(v)`` drawn uniformly from ``[0, M)``.  GSS then splits that value into a
matrix *address* ``h(v) = H(v) // F`` and a *fingerprint* ``f(v) = H(v) % F``
(Definition 5 in the paper).  TCM and gMatrix use the same kind of node hash
with ``M`` equal to the matrix width.

Python's builtin ``hash`` is salted per process, so we implement a stable
64-bit mix (an FNV-1a / splitmix64 combination) that produces identical values
across runs and platforms.  Different logical hash functions are obtained by
seeding the mixer, which is how TCM builds several independent sketches.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Hashable, Iterator, Optional, Tuple

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


class HashCounter:
    """Counts key-hash computations while a :func:`count_key_hashes` block runs.

    One increment per *key actually mixed through the hash function* — scalar
    calls add 1, the vectorized batch primitives add the batch length.  Memo
    hits, hash splits and address-sequence arithmetic do not count: the
    counter exists so tests can prove the ingest pipeline hashes every key
    exactly once end-to-end (the "hash-once" invariant).
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, amount: int = 1) -> None:
        self.count += amount


#: The active counter, or ``None`` (the common case: zero-cost fast path).
_active_counter: Optional[HashCounter] = None


@contextmanager
def count_key_hashes() -> Iterator[HashCounter]:
    """Context manager instrumenting every key-hash computation in the block.

    Counts both the scalar :func:`hash_key` family and the vectorized batch
    primitives in :mod:`repro.hashing.vectorized` (which report whole-batch
    lengths).  Nesting restores the previous counter on exit.
    """
    global _active_counter
    counter = HashCounter()
    previous = _active_counter
    _active_counter = counter
    try:
        yield counter
    finally:
        _active_counter = previous


def _count_hashes(amount: int) -> None:
    """Credit ``amount`` key hashes to the active counter, if any."""
    if _active_counter is not None:
        _active_counter.count += amount

#: Version of the deterministic hash mapping.  Bump whenever the value that
#: ``hash_key`` assigns to any input changes, because persisted sketches store
#: node hashes and are only meaningful under the hash version that wrote them.
#:
#: * v1 hashed ``bytes`` keys through a latin-1 -> utf-8 round trip, which
#:   double-encoded bytes >= 0x80 (and paid an extra copy).
#: * v2 hashes raw bytes directly.  Values are unchanged for ``str``, ``int``
#:   and ASCII-only ``bytes`` keys; non-ASCII ``bytes`` keys hash differently.
HASH_VERSION = 2


def _splitmix64(value: int) -> int:
    """Finalize a 64-bit value with the splitmix64 avalanche function."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hash_bytes(data: bytes, seed: int = 0) -> int:
    """Return a stable 64-bit hash of raw ``data``.

    FNV-1a over the bytes followed by a splitmix64 finalizer; the seed
    perturbs the initial state so that distinct seeds behave like independent
    hash functions.
    """
    _count_hashes(1)
    state = (_FNV_OFFSET ^ _splitmix64(seed)) & _MASK64
    for byte in data:
        state ^= byte
        state = (state * _FNV_PRIME) & _MASK64
    return _splitmix64(state)


def hash_string(key: str, seed: int = 0) -> int:
    """Return a stable 64-bit hash of ``key`` (FNV-1a over its UTF-8 bytes)."""
    return hash_bytes(key.encode("utf-8"), seed)


def hash_key(key: Hashable, seed: int = 0) -> int:
    """Hash an arbitrary node identifier (str, int, bytes, tuple...)."""
    if isinstance(key, str):
        return hash_string(key, seed)
    if isinstance(key, bytes):
        return hash_bytes(key, seed)
    if isinstance(key, int):
        _count_hashes(1)
        return _splitmix64((key & _MASK64) ^ _splitmix64(seed ^ 0xA5A5A5A5))
    return hash_string(repr(key), seed)


def split_hash(value: int, fingerprint_range: int) -> Tuple[int, int]:
    """Split a node hash into ``(address, fingerprint)``.

    ``address = value // F`` and ``fingerprint = value % F`` exactly as in
    Definition 5 of the paper.
    """
    if fingerprint_range <= 0:
        raise ValueError("fingerprint_range must be positive")
    return value // fingerprint_range, value % fingerprint_range


def fingerprint_of(value: int, fingerprint_range: int) -> int:
    """Return only the fingerprint part of a node hash."""
    return value % fingerprint_range


@dataclass(frozen=True)
class NodeHasher:
    """Node hash ``H(.)`` with value range ``[0, value_range)``.

    Parameters
    ----------
    value_range:
        ``M`` in the paper.  For GSS this is ``matrix_width * fingerprint_range``;
        for TCM it equals the matrix width.
    seed:
        Selects an independent hash function (used by multi-sketch TCM).
    """

    value_range: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.value_range <= 0:
            raise ValueError("value_range must be positive")

    def __call__(self, node: Hashable) -> int:
        """Return ``H(node)`` in ``[0, value_range)``."""
        return hash_key(node, self.seed) % self.value_range

    def address_and_fingerprint(
        self, node: Hashable, fingerprint_range: int
    ) -> Tuple[int, int]:
        """Return ``(h(node), f(node))`` for the given fingerprint range."""
        return split_hash(self(node), fingerprint_range)
