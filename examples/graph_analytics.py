"""Graph analytics on top of the GSS query primitives.

Run with::

    python examples/graph_analytics.py

The paper's claim is that the three query primitives are enough to run
"almost all algorithms for graphs" over the summary.  This example runs a
small analytics suite — super-spreader detection, PageRank, reachability and
triangle counting — on a GSS of the citation analog and compares every answer
with the exact adjacency-list store.
"""

from __future__ import annotations

from repro import GSS, GSSConfig, AdjacencyListGraph
from repro.datasets import load_dataset
from repro.queries.degree import top_k_by_out_degree
from repro.queries.pagerank import pagerank, ranking_overlap, top_k_ranked
from repro.queries.primitives import consume_stream
from repro.queries.reachability import is_reachable
from repro.queries.triangle import count_triangles


def main() -> None:
    stream = load_dataset("cit-HepPh", scale=0.2)
    statistics = stream.statistics()
    print(f"stream '{stream.name}': {statistics.item_count} items, "
          f"{statistics.distinct_edges} edges, {statistics.node_count} nodes")

    config = GSSConfig.for_edge_count(
        statistics.distinct_edges, sequence_length=8, candidate_buckets=8
    )
    sketch = GSS(config).ingest(stream)
    exact = consume_stream(AdjacencyListGraph(), stream)
    nodes = stream.nodes()[:400]

    # 1. Super-spreader detection (top out-degree nodes).
    exact_top = top_k_by_out_degree(exact, nodes, 5)
    sketch_top = top_k_by_out_degree(sketch, nodes, 5)
    print("\ntop-5 emitters (exact vs GSS):")
    for (exact_node, exact_degree), (sketch_node, sketch_degree) in zip(exact_top, sketch_top):
        print(f"  exact {exact_node} ({exact_degree})   |   GSS {sketch_node} ({sketch_degree})")

    # 2. PageRank agreement.
    exact_ranks = pagerank(exact, nodes, iterations=20)
    sketch_ranks = pagerank(sketch, nodes, iterations=20)
    overlap = ranking_overlap(exact_ranks, sketch_ranks, 10)
    print(f"\nPageRank top-10 overlap (GSS vs exact): {overlap:.2f}")
    print("GSS top-3 ranked nodes:", [node for node, _ in top_k_ranked(sketch_ranks, 3)])

    # 3. Reachability spot checks.
    sample_pairs = list(zip(nodes[:10], nodes[10:20]))
    agreements = sum(
        1
        for source, destination in sample_pairs
        if is_reachable(sketch, source, destination, max_nodes=2000)
        == is_reachable(exact, source, destination)
    )
    print(f"\nreachability agreement on {len(sample_pairs)} random pairs: "
          f"{agreements}/{len(sample_pairs)}")

    # 4. Triangle counting on a node sample (undirected view).
    sample = nodes[:150]
    exact_triangles = count_triangles(exact, sample)
    sketch_triangles = count_triangles(sketch, sample)
    print(f"\ntriangles among {len(sample)} sampled nodes: exact {exact_triangles}, "
          f"GSS {sketch_triangles}")


if __name__ == "__main__":
    main()
