"""Unit tests for the TCM baseline."""

import pytest

from repro.baselines.tcm import TCM, tcm_successor_union
from repro.queries.primitives import EDGE_NOT_FOUND, consume_stream


class TestTCMConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TCM(width=0)
        with pytest.raises(ValueError):
            TCM(width=4, depth=0)

    def test_memory_model(self):
        tcm = TCM(width=10, depth=4)
        assert tcm.memory_bytes() == 4 * 10 * 10 * 4

    def test_with_memory_of(self):
        tcm = TCM.with_memory_of(10_000, memory_ratio=8.0, depth=4)
        assert tcm.memory_bytes() <= 8 * 10_000 * 1.1
        assert tcm.memory_bytes() >= 8 * 10_000 * 0.5


class TestTCMQueries:
    def test_edge_query_never_underestimates(self, paper_stream):
        tcm = consume_stream(TCM(width=16, depth=2), paper_stream)
        for key, weight in paper_stream.aggregate_weights().items():
            assert tcm.edge_query(*key) >= weight

    def test_absent_edge_with_large_width(self):
        tcm = TCM(width=1024, depth=4)
        tcm.update("a", "b", 1.0)
        assert tcm.edge_query("x", "y") is None

    def test_small_width_collides(self):
        # With a 2x2 matrix every edge shares cells: estimates blow up.
        tcm = TCM(width=2, depth=1)
        for index in range(50):
            tcm.update(f"s{index}", f"d{index}", 1.0)
        assert tcm.edge_query("s0", "d0") > 1.0

    def test_successors_superset_of_truth(self, paper_stream):
        tcm = consume_stream(TCM(width=64, depth=4), paper_stream)
        truth = paper_stream.successors()
        for node, successors in truth.items():
            assert successors <= tcm.successor_query(node)

    def test_precursors_superset_of_truth(self, paper_stream):
        tcm = consume_stream(TCM(width=64, depth=4), paper_stream)
        truth = paper_stream.precursors()
        for node, precursors in truth.items():
            assert precursors <= tcm.precursor_query(node)

    def test_more_sketches_do_not_hurt_precision(self, small_stream):
        truth = small_stream.successors()
        nodes = small_stream.nodes()[:60]
        single = consume_stream(TCM(width=96, depth=1, seed=3), small_stream)
        multi = consume_stream(TCM(width=96, depth=4, seed=3), small_stream)

        def precision_of(tcm):
            from repro.metrics.accuracy import average_precision

            return average_precision(
                [(truth.get(node, set()), tcm.successor_query(node)) for node in nodes]
            )

        assert precision_of(multi) >= precision_of(single) - 1e-9

    def test_node_weights(self, paper_stream):
        tcm = consume_stream(TCM(width=64, depth=4), paper_stream)
        out_truth = paper_stream.node_out_weights()
        for node, weight in out_truth.items():
            assert tcm.node_out_weight(node) >= weight

    def test_update_count(self, paper_stream):
        tcm = consume_stream(TCM(width=8, depth=2), paper_stream)
        assert tcm.update_count == len(paper_stream)

    def test_successor_union_helper(self, paper_stream):
        tcm = consume_stream(TCM(width=32, depth=2), paper_stream)
        sets = tcm_successor_union(tcm, "a")
        assert sets["intersection"] <= sets["union"]
        assert paper_stream.successors()["a"] <= sets["intersection"]
