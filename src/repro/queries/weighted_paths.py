"""Weighted path queries: Dijkstra and bottleneck paths over the primitives.

The hop-count path queries live in :mod:`repro.queries.paths`; the functions
here additionally use the *edge weights* reported by the edge-query primitive.
Two interpretations of "weight" are common over communication graphs and both
are provided:

* :func:`dijkstra_distance` / :func:`dijkstra_path` treat the weight as a
  cost and find cheapest paths (Dijkstra over non-negative weights);
* :func:`widest_path_capacity` treats the weight as a capacity and finds the
  path whose minimum edge weight is maximal (the classic bottleneck /
  max-min path, e.g. the most heavily used route between two hosts).

On a sketch, weights only over-estimate and edges can only be added, so the
Dijkstra distance is not one-sided in general; the docstrings call this out
and the experiments quantify it.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

from repro.queries.primitives import GraphQueryInterface, edge_weight_or_zero


def _edge_cost(store: GraphQueryInterface, source: Hashable, destination: Hashable) -> float:
    return edge_weight_or_zero(store, source, destination)


def dijkstra_distance(
    store: GraphQueryInterface,
    source: Hashable,
    destination: Hashable,
    max_nodes: Optional[int] = None,
) -> Optional[float]:
    """Cheapest-path cost from ``source`` to ``destination``, or ``None``.

    Edge costs are the weights reported by the edge-query primitive (assumed
    non-negative, which holds for the additive aggregation of the paper's
    datasets).  ``max_nodes`` caps the number of settled nodes so queries on
    wildly over-approximated sketches terminate.
    """
    distances, _ = _dijkstra(store, source, destination, max_nodes)
    return distances.get(destination)


def dijkstra_path(
    store: GraphQueryInterface,
    source: Hashable,
    destination: Hashable,
    max_nodes: Optional[int] = None,
) -> Optional[List[Hashable]]:
    """One cheapest path from ``source`` to ``destination``, or ``None``."""
    distances, parents = _dijkstra(store, source, destination, max_nodes)
    if destination not in distances:
        return None
    path = [destination]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def _dijkstra(
    store: GraphQueryInterface,
    source: Hashable,
    destination: Optional[Hashable],
    max_nodes: Optional[int],
) -> Tuple[Dict[Hashable, float], Dict[Hashable, Hashable]]:
    """Settled distances and parent pointers of Dijkstra from ``source``."""
    distances: Dict[Hashable, float] = {}
    parents: Dict[Hashable, Hashable] = {}
    # Heap entries carry the parent that produced them so the parent of a node
    # is fixed only when the node is settled with its final (minimal) cost.
    frontier: List[Tuple[float, int, Hashable, Optional[Hashable]]] = [(0.0, 0, source, None)]
    counter = 1
    while frontier:
        cost, _, current, via = heapq.heappop(frontier)
        if current in distances:
            continue
        distances[current] = cost
        if via is not None:
            parents[current] = via
        if destination is not None and current == destination:
            break
        if max_nodes is not None and len(distances) >= max_nodes:
            break
        for neighbor in store.successor_query(current):
            if neighbor in distances:
                continue
            edge_cost = _edge_cost(store, current, neighbor)
            if edge_cost < 0:
                raise ValueError("dijkstra requires non-negative edge weights")
            heapq.heappush(frontier, (cost + edge_cost, counter, neighbor, current))
            counter += 1
    return distances, parents


def single_source_distances(
    store: GraphQueryInterface, source: Hashable, max_nodes: Optional[int] = None
) -> Dict[Hashable, float]:
    """Cheapest-path cost from ``source`` to every settled node."""
    distances, _ = _dijkstra(store, source, None, max_nodes)
    return distances


def widest_path_capacity(
    store: GraphQueryInterface,
    source: Hashable,
    destination: Hashable,
    max_nodes: Optional[int] = None,
) -> Optional[float]:
    """The best bottleneck capacity of any path from ``source`` to ``destination``.

    The capacity of a path is the minimum edge weight along it; the answer is
    the maximum capacity over all paths (``None`` when unreachable).  Because
    sketch weights only over-estimate, the sketch answer is an upper bound of
    the exact one.
    """
    best: Dict[Hashable, float] = {source: float("inf")}
    frontier: List[Tuple[float, int, Hashable]] = [(-float("inf"), 0, source)]
    settled: set = set()
    counter = 1
    while frontier:
        negative_capacity, _, current = heapq.heappop(frontier)
        if current in settled:
            continue
        settled.add(current)
        if current == destination:
            return -negative_capacity if current != source else float("inf")
        if max_nodes is not None and len(settled) >= max_nodes:
            break
        for neighbor in store.successor_query(current):
            if neighbor in settled:
                continue
            capacity = min(-negative_capacity, _edge_cost(store, current, neighbor))
            if capacity > best.get(neighbor, -float("inf")):
                best[neighbor] = capacity
                heapq.heappush(frontier, (-capacity, counter, neighbor))
                counter += 1
    return best.get(destination) if destination in best and destination in settled else None
