"""api-surface: the public summary contract stays whole.

Three sub-rules, all anchored on :mod:`repro.api`:

* **protocol conformance** — every sketch class the registry can hand out
  (the return annotations of the ``_build_*`` builders plus every
  ``restorer=Cls.from_dict``) must implement the full
  :class:`~repro.api.protocol.GraphSummary` surface.  Methods are
  resolved statically, following base classes through repro-internal
  imports, so "forgot to implement precursor_query on the new sketch"
  fails the lint instead of failing a user.
* **no ``-1.0`` sentinel reintroduction** — PR 3 replaced the paper's
  ``-1.0``-means-absent convention with ``Optional[float]`` because the
  sentinel collides with a real edge deleted down to ``-1.0``.  Any
  ``-1.0`` literal in library code is flagged; the deprecated
  compatibility shim in ``queries/primitives.py`` carries the one
  justified ``allow``.
* **factory-only construction** — ``experiments/`` and ``cli.py`` must
  build sketches through the registry (``SketchSpec``/``build``) so the
  equal-memory sizing arithmetic stays in one place; directly
  instantiating a registered sketch class there bypasses it.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.framework import Checker, Project, PyFile, Violation

__all__ = ["ApiSurfaceChecker"]

#: Files where direct sketch construction is banned (factory-routed code).
_FACTORY_ONLY_COMPONENTS = ("experiments",)
_FACTORY_ONLY_FILES = ("cli.py",)


def _find_file(project: Project, *suffix: str) -> Optional[PyFile]:
    for pyfile in project.py_files:
        if pyfile.components[-len(suffix):] == suffix and pyfile.tree is not None:
            return pyfile
    return None


def _protocol_methods(protocol_file: PyFile) -> Set[str]:
    for node in protocol_file.walk():
        if isinstance(node, ast.ClassDef) and node.name == "GraphSummary":
            return {
                statement.name
                for statement in node.body
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not statement.name.startswith("_")
            }
    return set()


def _import_map(pyfile: PyFile) -> Dict[str, str]:
    """Imported name → repro module path (``GSS`` → ``repro.core.gss``)."""
    imports: Dict[str, str] = {}
    for node in pyfile.walk():
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            if node.module.split(".")[0] == "repro":
                for alias in node.names:
                    imports[alias.asname or alias.name] = node.module
    return imports


def _registry_classes(registry_file: PyFile) -> Tuple[Set[str], Set[str]]:
    """(classes needing the protocol, classes banned from direct construction).

    The protocol set is the classes the factory can actually return: the
    return annotations of ``_build_*`` functions plus every
    ``restorer=Cls.from_dict``.  The construction-ban set additionally
    includes bare class names forwarded through builder lambdas
    (``lambda spec: _build_cm(CountMinSketch, spec)``) — those are wrapped
    or adapted before being returned, but constructing them directly in an
    experiment still bypasses the factory's sizing arithmetic.
    """
    conformance: Set[str] = set()
    banned: Set[str] = set()
    for node in registry_file.walk():
        if isinstance(node, ast.FunctionDef) and node.name.startswith("_build_"):
            annotation = node.returns
            if isinstance(annotation, ast.Name):
                conformance.add(annotation.id)
            elif isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                conformance.add(annotation.value.strip("'\""))
        elif isinstance(node, ast.keyword) and node.arg == "restorer":
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "from_dict"
                and isinstance(value.value, ast.Name)
            ):
                conformance.add(value.value.id)
        elif isinstance(node, ast.Lambda):
            for inner in ast.walk(node.body):
                if isinstance(inner, ast.Call):
                    for argument in inner.args:
                        if isinstance(argument, ast.Name) and argument.id[:1].isupper():
                            banned.add(argument.id)
    banned |= conformance
    return conformance, banned


def _resolve_module(project: Project, api_dir: Path, module: str) -> Optional[PyFile]:
    """``repro.core.gss`` → the PyFile at ``<package root>/core/gss.py``."""
    parts = module.split(".")[1:]  # drop the package segment itself
    package_root = api_dir.parent
    for candidate in (
        package_root.joinpath(*parts).with_suffix(".py"),
        package_root.joinpath(*parts) / "__init__.py",
    ):
        for pyfile in project.py_files:
            if pyfile.path == candidate and pyfile.tree is not None:
                return pyfile
    return None


def _class_def(pyfile: PyFile, name: str) -> Optional[ast.ClassDef]:
    for node in pyfile.walk():
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _collect_methods(
    project: Project,
    api_dir: Path,
    pyfile: PyFile,
    class_name: str,
    seen: Set[Tuple[str, str]],
) -> Optional[Set[str]]:
    """Statically collected method names of a class, bases included."""
    key = (pyfile.rel, class_name)
    if key in seen:
        return set()
    seen.add(key)
    definition = _class_def(pyfile, class_name)
    if definition is None:
        return None
    methods: Set[str] = set()
    for statement in definition.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.add(statement.name)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    methods.add(target.id)
    imports = _import_map(pyfile)
    for base in definition.bases:
        base_name = base.id if isinstance(base, ast.Name) else None
        if base_name is None:
            continue
        if base_name in imports:
            base_file = _resolve_module(project, api_dir, imports[base_name])
            if base_file is not None:
                inherited = _collect_methods(
                    project, api_dir, base_file, base_name, seen
                )
                if inherited:
                    methods |= inherited
        else:
            local = _class_def(pyfile, base_name)
            if local is not None:
                inherited = _collect_methods(project, api_dir, pyfile, base_name, seen)
                if inherited:
                    methods |= inherited
    return methods


class ApiSurfaceChecker(Checker):
    rule = "api-surface"
    description = (
        "registry sketches implement GraphSummary; no -1.0 sentinel; no "
        "direct sketch construction outside the factory"
    )
    scope = None  # the sentinel sub-rule watches the whole tree

    def check_project(self, project: Project) -> Iterator[Violation]:
        protocol_file = _find_file(project, "api", "protocol.py")
        registry_file = _find_file(project, "api", "registry.py")
        banned_constructors: Set[str] = set()
        if protocol_file is not None and registry_file is not None:
            conformance, banned_constructors = _registry_classes(registry_file)
            yield from self._check_conformance(
                project, protocol_file, registry_file, conformance
            )
        for pyfile in project.py_files:
            if pyfile.tree is None:
                continue
            yield from self._check_sentinel(pyfile)
            if banned_constructors and self._factory_only(pyfile):
                yield from self._check_construction(pyfile, banned_constructors)

    # -- protocol conformance ------------------------------------------------

    def _check_conformance(
        self,
        project: Project,
        protocol_file: PyFile,
        registry_file: PyFile,
        classes: Set[str],
    ) -> Iterator[Violation]:
        required = _protocol_methods(protocol_file)
        if not required:
            yield Violation(
                rule=self.rule,
                path=protocol_file.rel,
                line=1,
                message="GraphSummary protocol not found or has no methods",
            )
            return
        api_dir = registry_file.path.parent
        imports = _import_map(registry_file)
        for class_name in sorted(classes):
            module = imports.get(class_name)
            if module is None:
                yield Violation(
                    rule=self.rule,
                    path=registry_file.rel,
                    line=1,
                    message=(
                        f"registry references {class_name} but never imports "
                        "it from a repro module"
                    ),
                )
                continue
            module_file = _resolve_module(project, api_dir, module)
            if module_file is None:
                # The module is outside the scanned tree (partial lint runs
                # over a subdirectory); nothing to verify against.
                continue
            methods = _collect_methods(
                project, api_dir, module_file, class_name, set()
            )
            if methods is None:
                yield Violation(
                    rule=self.rule,
                    path=module_file.rel,
                    line=1,
                    message=f"registry class {class_name} not found in {module}",
                )
                continue
            missing = sorted(required - methods)
            if missing:
                definition = _class_def(module_file, class_name)
                yield Violation(
                    rule=self.rule,
                    path=module_file.rel,
                    line=definition.lineno if definition else 1,
                    message=(
                        f"{class_name} is registered but does not implement "
                        f"the GraphSummary protocol: missing {', '.join(missing)}"
                    ),
                )

    # -- -1.0 sentinel ban ---------------------------------------------------

    def _check_sentinel(self, pyfile: PyFile) -> Iterator[Violation]:
        for node in pyfile.walk():
            value: Optional[float] = None
            if (
                isinstance(node, ast.UnaryOp)
                and isinstance(node.op, ast.USub)
                and isinstance(node.operand, ast.Constant)
                and isinstance(node.operand.value, float)
            ):
                value = -node.operand.value
            elif isinstance(node, ast.Constant) and isinstance(node.value, float):
                value = node.value
            # repro: allow(api-surface): the checker must spell the banned
            # sentinel to recognise it.
            if value == -1.0:
                yield self.violation(
                    pyfile,
                    node,
                    "-1.0 literal — the paper's edge-absent sentinel is "
                    "deprecated (it collides with an edge deleted down to "
                    "-1.0); use Optional[float] / None",
                )

    # -- factory-only construction -------------------------------------------

    def _factory_only(self, pyfile: PyFile) -> bool:
        return (
            any(part in pyfile.components for part in _FACTORY_ONLY_COMPONENTS)
            or pyfile.components[-1] in _FACTORY_ONLY_FILES
        )

    def _check_construction(
        self, pyfile: PyFile, banned: Set[str]
    ) -> Iterator[Violation]:
        for node in pyfile.walk():
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name in banned:
                yield self.violation(
                    pyfile,
                    node,
                    f"direct {name}(...) construction outside the factory — "
                    "build through SketchSpec/repro.api.build so the "
                    "equal-memory sizing stays in one place",
                )
