"""The stream item: a timestamped, weighted, directed edge."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple


@dataclass(frozen=True)
class StreamEdge:
    """One item of a graph stream: ``(source, destination; timestamp; weight)``.

    The same ``(source, destination)`` pair may appear many times in a stream;
    the weight of the edge in the streaming graph is the SUM of all item
    weights.  A negative weight deletes (part of) a previously inserted edge.
    An optional ``label`` carries edge metadata (the paper labels web-NotreDame
    edges with port/protocol for the subgraph-matching experiment).
    """

    source: Hashable
    destination: Hashable
    weight: float = 1.0
    timestamp: float = 0.0
    label: str = ""

    @property
    def key(self) -> Tuple[Hashable, Hashable]:
        """The (source, destination) pair identifying the streaming-graph edge."""
        return (self.source, self.destination)

    def reversed(self) -> "StreamEdge":
        """Return the same item with source and destination swapped."""
        return StreamEdge(
            source=self.destination,
            destination=self.source,
            weight=self.weight,
            timestamp=self.timestamp,
            label=self.label,
        )

    def with_weight(self, weight: float) -> "StreamEdge":
        """Return a copy of this item carrying a different weight."""
        return StreamEdge(
            source=self.source,
            destination=self.destination,
            weight=weight,
            timestamp=self.timestamp,
            label=self.label,
        )

    def is_deletion(self) -> bool:
        """True when the item removes weight from the streaming graph."""
        return self.weight < 0
