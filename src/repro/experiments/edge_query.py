"""Figure 8 — average relative error of edge queries vs matrix width.

For every dataset analog and matrix width the runner builds GSS sketches with
12- and 16-bit fingerprints plus a TCM baseline granted 8x the GSS memory
(the paper's handicap), issues the edge-query set (all distinct edges, or a
deterministic sample when ``query_sample`` is set) and reports the ARE.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.metrics.accuracy import average_relative_error
from repro.queries.primitives import edge_weight_or_zero


def _edge_query_are(store, query_edges, truth) -> float:
    pairs = [
        (edge_weight_or_zero(store, key[0], key[1]), truth[key])
        for key in query_edges
    ]
    return average_relative_error(pairs)


def run_edge_query_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Reproduce Figure 8 (edge-query ARE for GSS fsize 12/16 and TCM 8x)."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment="fig8",
        description="edge query ARE vs matrix width (TCM granted 8x memory)",
        columns=["dataset", "width", "structure", "are", "buffer_pct"],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        truth = stream.aggregate_weights()
        query_edges = config.sample_items(list(truth))
        for width in config.widths_for(statistics):
            reference = None
            for bits in config.fingerprint_bits:
                sketch = config.feed(config.build_gss(width, bits), stream)
                if bits == max(config.fingerprint_bits):
                    reference = sketch
                result.add(
                    dataset=name,
                    width=width,
                    structure=f"GSS(fsize={bits})",
                    are=_edge_query_are(sketch, query_edges, truth),
                    buffer_pct=sketch.buffer_percentage,
                )
            tcm = config.feed(
                config.build_tcm(reference, config.tcm_edge_memory_ratio), stream
            )
            result.add(
                dataset=name,
                width=width,
                structure=f"TCM({int(config.tcm_edge_memory_ratio)}x memory)",
                are=_edge_query_are(tcm, query_edges, truth),
                buffer_pct=0.0,
            )
            for extra_name in config.extra_sketches_with("edge_queries"):
                extra = config.feed(
                    config.build_sketch(
                        extra_name, reference.config.matrix_memory_bytes()
                    ),
                    stream,
                )
                result.add(
                    dataset=name,
                    width=width,
                    structure=f"{extra_name}(equal memory)",
                    are=_edge_query_are(extra, query_edges, truth),
                    buffer_pct=0.0,
                )
    return result
