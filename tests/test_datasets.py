"""Unit tests for the Zipf sampler and the synthetic dataset generators."""

import random

import pytest

from repro.datasets.registry import DATASET_SPECS, list_datasets, load_dataset
from repro.datasets.synthetic import (
    SyntheticGraphSpec,
    citation_stream,
    communication_stream,
    labeled_stream,
    power_law_stream,
    unreachable_pairs,
    web_stream,
)
from repro.datasets.zipf import ZipfSampler, zipf_ranks, zipf_weights


class TestZipf:
    def test_values_within_support(self):
        sampler = ZipfSampler(exponent=1.5, support=10, rng=random.Random(1))
        assert all(1 <= v <= 10 for v in sampler.sample_many(500))

    def test_skew_prefers_small_ranks(self):
        sampler = ZipfSampler(exponent=2.0, support=100, rng=random.Random(2))
        draws = sampler.sample_many(2000)
        assert draws.count(1) > draws.count(10) > 0 or draws.count(10) == 0

    def test_zipf_weights_are_floats(self):
        weights = zipf_weights(50, seed=3)
        assert len(weights) == 50
        assert all(isinstance(w, float) and w >= 1.0 for w in weights)

    def test_zipf_ranks_picks_from_population(self):
        population = ["a", "b", "c", "d"]
        picks = zipf_ranks(population, 100, seed=4)
        assert set(picks) <= set(population)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(exponent=0)
        with pytest.raises(ValueError):
            ZipfSampler(support=0)


class TestSyntheticGenerators:
    def test_power_law_stream_basic_shape(self):
        spec = SyntheticGraphSpec(name="t", node_count=200, edge_count=600, seed=1)
        stream = power_law_stream(spec)
        stats = stream.statistics()
        assert stats.distinct_edges <= 600
        assert stats.distinct_edges > 300
        assert stats.node_count <= 200
        assert stats.item_count >= stats.distinct_edges

    def test_power_law_stream_deterministic(self):
        spec = SyntheticGraphSpec(name="t", node_count=100, edge_count=300, seed=9)
        first = power_law_stream(spec).aggregate_weights()
        second = power_law_stream(spec).aggregate_weights()
        assert first == second

    def test_power_law_degrees_are_skewed(self):
        spec = SyntheticGraphSpec(name="t", node_count=400, edge_count=2000, seed=5)
        stats = power_law_stream(spec).statistics()
        average_degree = stats.distinct_edges / stats.node_count
        assert stats.max_out_degree > 4 * average_degree

    def test_communication_stream_has_duplicates(self):
        stream = communication_stream(200, 600, seed=7, duplication=2.0)
        stats = stream.statistics()
        assert stats.item_count > stats.distinct_edges

    def test_citation_stream_cites_earlier_nodes(self):
        stream = citation_stream(300, 1200, seed=11)
        for edge in list(stream)[:200]:
            assert int(edge.source[1:]) > int(edge.destination[1:])

    def test_web_stream_no_self_loops(self):
        stream = web_stream(300, 1000, seed=13)
        assert all(edge.source != edge.destination for edge in stream)

    def test_labeled_stream_consistent_labels(self):
        stream = labeled_stream(communication_stream(100, 300, seed=3), label_count=4)
        labels = {}
        for edge in stream:
            labels.setdefault(edge.key, edge.label)
            assert edge.label == labels[edge.key]
            assert edge.label.startswith("L")

    def test_unreachable_pairs_are_unreachable(self):
        stream = citation_stream(150, 400, seed=17)
        successors = stream.successors()
        pairs = unreachable_pairs(stream, 10, seed=19)
        assert pairs
        # verify by BFS on the ground truth
        from collections import deque

        for source, destination in pairs:
            seen = {source}
            queue = deque([source])
            while queue:
                current = queue.popleft()
                for neighbor in successors.get(current, ()):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
            assert destination not in seen


class TestRegistry:
    def test_lists_all_five_paper_datasets(self):
        names = list_datasets()
        assert names == [
            "email-EuAll",
            "cit-HepPh",
            "web-NotreDame",
            "lkml-reply",
            "caida-networkflow",
        ]

    def test_load_dataset_scales(self):
        small = load_dataset("cit-HepPh", scale=0.05)
        larger = load_dataset("cit-HepPh", scale=0.1)
        assert larger.statistics().distinct_edges > small.statistics().distinct_edges

    def test_load_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")

    def test_load_dataset_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            load_dataset("cit-HepPh", scale=0)

    def test_specs_describe(self):
        description = DATASET_SPECS["email-EuAll"].describe()
        assert "email-EuAll" in description
        assert "420045" in description

    def test_analogs_preserve_duplication_character(self):
        # lkml-reply and caida analogs are heavy on repeated edges; cit-HepPh is not.
        lkml = load_dataset("lkml-reply", scale=0.1).statistics()
        cit = load_dataset("cit-HepPh", scale=0.1).statistics()
        assert lkml.average_multiplicity > cit.average_multiplicity
