"""Unit tests for the graph-stream model (edges, streams, statistics)."""

import pytest

from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream, stream_from_pairs


class TestStreamEdge:
    def test_key(self):
        edge = StreamEdge("a", "b", 2.0, 1.0)
        assert edge.key == ("a", "b")

    def test_reversed(self):
        edge = StreamEdge("a", "b", 2.0, 1.0, label="x")
        swapped = edge.reversed()
        assert swapped.source == "b" and swapped.destination == "a"
        assert swapped.weight == 2.0 and swapped.label == "x"

    def test_with_weight(self):
        assert StreamEdge("a", "b", 1.0).with_weight(5.0).weight == 5.0

    def test_is_deletion(self):
        assert StreamEdge("a", "b", -1.0).is_deletion()
        assert not StreamEdge("a", "b", 1.0).is_deletion()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            StreamEdge("a", "b").weight = 3.0


class TestGraphStream:
    def test_length_and_iteration(self, paper_stream):
        assert len(paper_stream) == 15
        assert sum(1 for _ in paper_stream) == 15

    def test_indexing_and_slicing(self, paper_stream):
        assert paper_stream[0].source == "a"
        window = paper_stream[0:5]
        assert isinstance(window, GraphStream)
        assert len(window) == 5

    def test_statistics_match_paper_example(self, paper_stream):
        stats = paper_stream.statistics()
        assert stats.item_count == 15
        assert stats.node_count == 7          # a..g
        assert stats.distinct_edges == 11     # (a,c) x3, (c,f) x2, (d,a) x2 merge
        assert stats.total_weight == 20.0
        assert stats.average_multiplicity == pytest.approx(15 / 11)

    def test_aggregate_weights_sums_duplicates(self, paper_stream):
        weights = paper_stream.aggregate_weights()
        assert weights[("a", "c")] == 5.0
        assert weights[("c", "f")] == 2.0
        assert weights[("d", "a")] == 2.0
        assert weights[("e", "b")] == 2.0

    def test_successors_and_precursors(self, paper_stream):
        successors = paper_stream.successors()
        precursors = paper_stream.precursors()
        assert successors["a"] == {"b", "c", "f", "e", "g"}
        assert precursors["f"] == {"a", "c", "d"}

    def test_node_out_weights(self, paper_stream):
        out_weights = paper_stream.node_out_weights()
        assert out_weights["a"] == 1 + 5 + 1 + 1 + 1  # b, c(x3), f, e, g
        assert out_weights["e"] == 2.0

    def test_nodes_first_seen_order(self, paper_stream):
        assert paper_stream.nodes()[:4] == ["a", "b", "c", "d"]

    def test_unique_edges(self, paper_stream):
        unique = paper_stream.unique_edges()
        assert len(unique) == 11
        assert len(unique.distinct_edge_keys()) == 11

    def test_window(self, paper_stream):
        window = paper_stream.window(5, 5)
        assert len(window) == 5
        with pytest.raises(ValueError):
            paper_stream.window(-1, 5)

    def test_sorted_by_timestamp(self):
        stream = GraphStream(
            [StreamEdge("a", "b", 1, 5.0), StreamEdge("b", "c", 1, 1.0)]
        )
        assert stream.sorted_by_timestamp()[0].timestamp == 1.0

    def test_append_and_extend(self):
        stream = GraphStream()
        stream.append(StreamEdge("a", "b"))
        stream.extend([StreamEdge("b", "c"), StreamEdge("c", "d")])
        assert len(stream) == 3

    def test_stream_from_pairs(self):
        stream = stream_from_pairs([("a", "b"), ("b", "c")], weights=[2.0, 3.0])
        assert len(stream) == 2
        assert stream[0].weight == 2.0
        assert stream[1].timestamp == 1.0

    def test_empty_statistics(self):
        stats = GraphStream().statistics()
        assert stats.item_count == 0
        assert stats.average_multiplicity == 0.0
