"""The basic GSS of Section IV (no square hashing, one room, no sampling).

Kept as a separate, deliberately simple class because the paper presents it as
the conceptual stepping stone: one mapped bucket per edge determined directly
by the address pair ``(h(s), h(d))``, fingerprints to disambiguate edges that
share a bucket, and an adjacency-list buffer for everything that collides.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Set, Tuple

from repro.core.buffer import LeftoverBuffer
from repro.core.reverse_index import NodeIndex
from repro.hashing.hash_functions import NodeHasher
from repro.queries.primitives import Capabilities, SummaryShims


class GSSBasic(SummaryShims):
    """Basic Graph Stream Sketch: an ``m x m`` fingerprint matrix plus buffer."""

    def __init__(
        self,
        matrix_width: int,
        fingerprint_bits: int = 16,
        keep_node_index: bool = True,
        seed: int = 0,
    ) -> None:
        if matrix_width <= 0:
            raise ValueError("matrix_width must be positive")
        if not 1 <= fingerprint_bits <= 32:
            raise ValueError("fingerprint_bits must be between 1 and 32")
        self.matrix_width = matrix_width
        self.fingerprint_bits = fingerprint_bits
        self.fingerprint_range = 1 << fingerprint_bits
        self.hash_range = matrix_width * self.fingerprint_range
        self._hasher = NodeHasher(value_range=self.hash_range, seed=seed)
        # One room per bucket: (f_s, f_d, weight) or None.
        self._cells: List[Optional[List]] = [None] * (matrix_width * matrix_width)
        self._buffer = LeftoverBuffer()
        self._node_index: Optional[NodeIndex] = NodeIndex() if keep_node_index else None
        self._matrix_edge_count = 0

    # -- hashing ------------------------------------------------------------

    def node_hash(self, node: Hashable) -> int:
        """``H(node)``."""
        return self._hasher(node)

    def _split(self, node_hash: int) -> Tuple[int, int]:
        return node_hash // self.fingerprint_range, node_hash % self.fingerprint_range

    # -- updates ------------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Apply one stream item."""
        source_hash = self._hasher(source)
        destination_hash = self._hasher(destination)
        if self._node_index is not None:
            self._node_index.record(source, source_hash)
            self._node_index.record(destination, destination_hash)
        source_address, source_fp = self._split(source_hash)
        destination_address, destination_fp = self._split(destination_hash)
        position = source_address * self.matrix_width + destination_address
        cell = self._cells[position]
        if cell is None:
            self._cells[position] = [source_fp, destination_fp, weight]
            self._matrix_edge_count += 1
            return
        if cell[0] == source_fp and cell[1] == destination_fp:
            cell[2] += weight
            return
        self._buffer.add(source_hash, destination_hash, weight)

    # -- primitives ------------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Weight of the edge, or ``None`` when absent (deletion-safe)."""
        source_hash = self._hasher(source)
        destination_hash = self._hasher(destination)
        source_address, source_fp = self._split(source_hash)
        destination_address, destination_fp = self._split(destination_hash)
        cell = self._cells[source_address * self.matrix_width + destination_address]
        if cell is not None and cell[0] == source_fp and cell[1] == destination_fp:
            return cell[2]
        return self._buffer.get(source_hash, destination_hash)

    def successor_hashes(self, node: Hashable) -> Set[int]:
        """Sketch hashes of 1-hop successors: scan the node's row."""
        node_hash = self._hasher(node)
        address, fingerprint = self._split(node_hash)
        found: Set[int] = set()
        base = address * self.matrix_width
        for column in range(self.matrix_width):
            cell = self._cells[base + column]
            if cell is not None and cell[0] == fingerprint:
                found.add(column * self.fingerprint_range + cell[1])
        found.update(self._buffer.successors_of(node_hash))
        return found

    def precursor_hashes(self, node: Hashable) -> Set[int]:
        """Sketch hashes of 1-hop precursors: scan the node's column."""
        node_hash = self._hasher(node)
        address, fingerprint = self._split(node_hash)
        found: Set[int] = set()
        for row in range(self.matrix_width):
            cell = self._cells[row * self.matrix_width + address]
            if cell is not None and cell[1] == fingerprint:
                found.add(row * self.fingerprint_range + cell[0])
        found.update(self._buffer.precursors_of(node_hash))
        return found

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Original node IDs 1-hop reachable from ``node``."""
        return self._expand(self.successor_hashes(node))

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Original node IDs that reach ``node`` in one hop."""
        return self._expand(self.precursor_hashes(node))

    def _expand(self, hashes: Set[int]) -> Set[Hashable]:
        if self._node_index is None:
            raise RuntimeError("original-ID queries require keep_node_index=True")
        return self._node_index.expand(hashes)

    # -- introspection ------------------------------------------------------------

    @property
    def buffer(self) -> LeftoverBuffer:
        """The left-over edge buffer."""
        return self._buffer

    @property
    def matrix_edge_count(self) -> int:
        """Distinct sketch edges stored in the matrix."""
        return self._matrix_edge_count

    @property
    def buffer_edge_count(self) -> int:
        """Distinct sketch edges stored in the buffer."""
        return len(self._buffer)

    @property
    def buffer_percentage(self) -> float:
        """Fraction of stored sketch edges that live in the buffer."""
        total = self._matrix_edge_count + len(self._buffer)
        return len(self._buffer) / total if total else 0.0

    def memory_bytes(self) -> int:
        """Memory under the paper's C layout."""
        room_bits = 2 * self.fingerprint_bits + 32
        matrix_bytes = self.matrix_width * self.matrix_width * room_bits // 8
        return matrix_bytes + self._buffer.memory_bytes()

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: the Section IV sketch has no batched path and
        composes no node-weight queries."""
        return Capabilities(
            node_out_weights=False,
            node_in_weights=False,
            batched_updates=False,
        )
