#!/usr/bin/env python
"""Concurrent load generator for a ``repro serve`` server.

Drives a live :class:`~repro.serve.SummaryServer` with a configurable mix of
ingest feeds and query clients (see :mod:`repro.serve.loadgen`) and prints
one JSON report: aggregate edges/s, p50/p99 query latency, busy/retry
pressure, RSS before/after, and — with ``--verify`` — a sweep proving every
served answer bit-identical to an in-process ``ShardedSummary`` fed the same
stream.

The ``server.op_latency_ms`` section comes from the server's own
``repro_serve_request_seconds`` histograms, scraped before and after the run
and diffed — so next to the client-side round-trip percentiles you see where
the time actually went server-side (frame decode → reply ready, per op).

Point it at a running server::

    PYTHONPATH=src python -m repro serve --workers 2 --port 8750 &
    PYTHONPATH=src python scripts/load_gen.py --port 8750 --items 100000

or let it host one itself (the CI smoke path)::

    PYTHONPATH=src python scripts/load_gen.py --self-host --workers 2 \
        --transport shm --verify --items 40000

``--verify`` pins one ingest client per shard (the stream is pre-partitioned
by routing hash, so per-shard order matches a single-writer reference);
without it, ``--ingest-clients`` contiguous slices run concurrently and only
throughput is measured.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.loadgen import LoadGenConfig, run_load_test  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8750,
                        help="server port (ignored with --self-host)")
    parser.add_argument("--ingest-clients", type=int, default=2)
    parser.add_argument("--query-clients", type=int, default=6)
    parser.add_argument("--items", type=int, default=50_000,
                        help="synthetic stream length (the fixed work unit)")
    parser.add_argument("--nodes", type=int, default=2_000)
    parser.add_argument("--duration", type=float, default=None,
                        help="keep cycling the stream until this many seconds "
                             "have passed (throughput mode only)")
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--verify", action="store_true",
                        help="one ingest client per shard + bit-identical "
                             "sweep against an in-process reference")
    parser.add_argument("--verify-sample", type=int, default=400)
    parser.add_argument("--self-host", action="store_true",
                        help="start a server in this process (needs --workers)")
    parser.add_argument("--workers", type=int, default=2,
                        help="self-hosted server's shard count")
    parser.add_argument("--transport", choices=["auto", "shm", "pipe"],
                        default="auto", help="self-hosted cluster transport")
    parser.add_argument("--expected-edges", type=int, default=100_000,
                        help="self-hosted summary's sizing input")
    parser.add_argument("--credits", type=int, default=8,
                        help="self-hosted server's per-connection credit window")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="self-hosted server's global in-flight batch cap")
    args = parser.parse_args(argv)

    config = LoadGenConfig(
        host=args.host,
        port=args.port,
        ingest_clients=args.ingest_clients,
        query_clients=args.query_clients,
        total_items=args.items,
        nodes=args.nodes,
        duration=args.duration,
        batch_size=args.batch_size,
        seed=args.seed,
        verify=args.verify,
        verify_sample=args.verify_sample,
    )

    handle = None
    cluster = None
    reference = None
    spec = None
    if args.self_host or args.verify:
        from repro.api import SketchSpec, build  # noqa: E402

        spec = SketchSpec(
            "sharded-gss",
            expected_edges=args.expected_edges,
            params={"workers": args.workers, "transport": args.transport},
        )
    if args.self_host:
        from repro.api import build  # noqa: E402
        from repro.serve import ServeConfig, serve_in_thread  # noqa: E402

        cluster = build(spec)
        handle = serve_in_thread(
            cluster,
            ServeConfig(
                host=args.host,
                port=0,
                credits=args.credits,
                max_inflight=args.max_inflight,
                close_summary=False,
            ),
        )
        config.host, config.port = handle.host, handle.port
        print(f"self-hosted server on {config.host}:{config.port} "
              f"(workers={args.workers} transport={cluster.transport})",
              file=sys.stderr)
    if args.verify:
        from repro.api import build  # noqa: E402

        reference = build(spec)

    try:
        report = run_load_test(config, reference=reference)
    finally:
        if reference is not None:
            reference.close()
        if handle is not None:
            handle.stop()
        if cluster is not None:
            cluster.close()

    print(json.dumps(report, indent=2))
    op_latency = report.get("server", {}).get("op_latency_ms")
    if op_latency:
        client_query = report.get("query", {})
        print("server-side latency (this run, from server histograms):",
              file=sys.stderr)
        for op, stats in sorted(op_latency.items()):
            p50 = stats.get("p50_ms")
            p99 = stats.get("p99_ms")
            print(f"  {op:<18} count={stats['count']:<8} "
                  f"p50={p50:.3f}ms p99={p99:.3f}ms",
                  file=sys.stderr)
        if client_query.get("p50_ms") is not None:
            print(f"  client round-trip  count={client_query['count']:<8} "
                  f"p50={client_query['p50_ms']:.3f}ms "
                  f"p99={client_query['p99_ms']:.3f}ms",
                  file=sys.stderr)
    if args.verify and not report.get("verify", {}).get("ok"):
        print("verification FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
