"""Extension experiment — partitioned (distributed-style) GSS deployment.

The paper claims GSS drops into distributed graph systems.  This experiment
shards the stream over 1 / 2 / 4 / 8 source-partitioned shards of equal total
capacity and measures what sharding costs:

* edge-query ARE and successor precision against the exact streaming graph;
* load imbalance across shards (source-cut routing follows node popularity);
* buffer percentage (smaller shards congest slightly differently);
* total memory, held approximately constant across partition counts.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.metrics.accuracy import average_precision, average_relative_error
from repro.queries.primitives import edge_weight_or_zero


def run_partition_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Accuracy and balance of PartitionedGSS for several shard counts."""
    config = config or ExperimentConfig()
    fingerprint_bits = max(config.fingerprint_bits)
    partition_counts = config.extras.get("partition_counts", (1, 2, 4, 8))
    result = ExperimentResult(
        experiment="partition",
        description="source-partitioned GSS: accuracy, balance and memory vs shard count",
        columns=[
            "dataset",
            "partitions",
            "edge_are",
            "successor_precision",
            "load_imbalance",
            "buffer_pct",
            "memory_bytes",
        ],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        truth_weights = stream.aggregate_weights()
        truth_successors = stream.successors()
        edge_sample = config.sample_items(list(truth_weights.items()))
        node_sample = config.sample_items(list(truth_successors.items()))
        for partitions in partition_counts:
            sharded = config.build_sketch(
                "partitioned-gss",
                memory_bytes=None,
                expected_edges=max(1, statistics.distinct_edges),
                partitions=partitions,
                fingerprint_bits=fingerprint_bits,
                sequence_length=config.sequence_length,
                candidate_buckets=config.candidate_buckets,
            )
            config.feed(sharded, stream)

            edge_pairs = [
                (edge_weight_or_zero(sharded, *key), true_weight)
                for key, true_weight in edge_sample
            ]
            successor_pairs = [
                (true_set, sharded.successor_query(node)) for node, true_set in node_sample
            ]

            result.add(
                dataset=name,
                partitions=partitions,
                edge_are=average_relative_error(edge_pairs),
                successor_precision=average_precision(successor_pairs),
                load_imbalance=sharded.load_imbalance(),
                buffer_pct=sharded.buffer_percentage,
                memory_bytes=sharded.memory_bytes(),
            )
    return result
