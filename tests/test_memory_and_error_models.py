"""Tests for the memory accounting and propagated error models."""

from __future__ import annotations

import pytest

from repro.analysis.error_models import (
    expected_edge_query_relative_error,
    expected_false_successors,
    expected_node_query_relative_error,
    expected_successor_precision,
    expected_true_negative_recall,
    memory_accuracy_tradeoff,
    reachability_false_positive_bound,
    triangle_count_bias,
)
from repro.analysis.memory import (
    adjacency_list_memory_bytes,
    adjacency_matrix_memory_bytes,
    compare_structures,
    gss_memory_bytes,
    gss_width_for_memory,
    memory_sweep,
    tcm_memory_bytes,
    tcm_width_for_memory,
)
from repro.core.config import GSSConfig


class TestMemoryAccounting:
    def test_gss_memory_includes_buffer_and_index(self):
        config = GSSConfig(matrix_width=100)
        base = gss_memory_bytes(config)
        with_extras = gss_memory_bytes(config, buffered_edges=10, indexed_nodes=5)
        assert with_extras == base + 10 * 16 + 5 * 16

    def test_gss_memory_rejects_negative(self):
        with pytest.raises(ValueError):
            gss_memory_bytes(GSSConfig(matrix_width=10), buffered_edges=-1)

    def test_tcm_memory(self):
        assert tcm_memory_bytes(100, depth=4) == 100 * 100 * 4 * 4
        with pytest.raises(ValueError):
            tcm_memory_bytes(0)

    def test_adjacency_memory(self):
        assert adjacency_list_memory_bytes(100, 10) == 100 * 16 + 10 * 16
        assert adjacency_matrix_memory_bytes(10) == 400
        with pytest.raises(ValueError):
            adjacency_list_memory_bytes(-1, 0)
        with pytest.raises(ValueError):
            adjacency_matrix_memory_bytes(-1)

    def test_width_for_memory_round_trips(self):
        width = tcm_width_for_memory(tcm_memory_bytes(500))
        assert width == 500
        gss_width = gss_width_for_memory(10_000_000, fingerprint_bits=16, rooms=2)
        config = GSSConfig(matrix_width=gss_width, fingerprint_bits=16, rooms=2)
        assert config.matrix_memory_bytes() <= 10_000_000

    def test_width_for_memory_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            tcm_width_for_memory(0)
        with pytest.raises(ValueError):
            gss_width_for_memory(-5)

    def test_compare_structures_matches_paper_ordering(self):
        comparison = compare_structures(edge_count=500_000, node_count=100_000)
        # Sparse graph: dense adjacency matrix is by far the largest.
        assert comparison.adjacency_matrix_bytes > comparison.adjacency_list_bytes
        # GSS stays within a small constant of the adjacency list (O(|E|)).
        assert comparison.gss_bytes < 4 * comparison.adjacency_list_bytes
        row = comparison.as_row()
        assert row["edges"] == 500_000
        assert row["list_to_gss_ratio"] > 0

    def test_compare_structures_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            compare_structures(0, 10)

    def test_memory_sweep_is_monotone(self):
        sweep = memory_sweep([10_000, 100_000, 1_000_000])
        sizes = [row.gss_bytes for row in sweep]
        assert sizes == sorted(sizes)
        with pytest.raises(ValueError):
            memory_sweep([1000], average_degree=0)


class TestErrorModels:
    def test_false_successors_shrink_with_M(self):
        small = expected_false_successors(M=1_000, nodes=10_000, edges=50_000)
        large = expected_false_successors(M=1_000_000, nodes=10_000, edges=50_000)
        assert large < small

    def test_false_successors_validation(self):
        with pytest.raises(ValueError):
            expected_false_successors(0, 10, 10)
        with pytest.raises(ValueError):
            expected_false_successors(10, -1, 10)

    def test_successor_precision_bounds(self):
        precision = expected_successor_precision(M=1_000_000, nodes=10_000, edges=50_000, out_degree=5)
        assert 0.0 < precision <= 1.0
        assert expected_successor_precision(M=10, nodes=0, edges=0, out_degree=0) == 1.0
        with pytest.raises(ValueError):
            expected_successor_precision(100, 10, 10, out_degree=-1)

    def test_gss_precision_beats_tcm_precision(self):
        gss = expected_successor_precision(M=1000 * 65536, nodes=10_000, edges=50_000, out_degree=5)
        tcm = expected_successor_precision(M=1000, nodes=10_000, edges=50_000, out_degree=5)
        assert gss > tcm

    def test_node_query_error_decreases_with_M(self):
        small = expected_node_query_relative_error(M=1_000, edges=50_000, node_out_weight=100, average_edge_weight=2)
        large = expected_node_query_relative_error(M=65_536_000, edges=50_000, node_out_weight=100, average_edge_weight=2)
        assert large < small
        with pytest.raises(ValueError):
            expected_node_query_relative_error(1000, 100, 0, 1)

    def test_edge_query_error_model(self):
        error = expected_edge_query_relative_error(
            M=1000 * 65536, edges=500_000, edge_weight=10, average_edge_weight=3, adjacent_edges=200
        )
        assert 0.0 <= error < 0.01
        with pytest.raises(ValueError):
            expected_edge_query_relative_error(1000, 100, 0, 1)

    def test_reachability_bound_and_recall(self):
        bound = reachability_false_positive_bound(
            M=1000 * 4096, nodes=5_000, edges=20_000, frontier_size=50, path_length=4
        )
        assert 0.0 <= bound <= 1.0
        recall = expected_true_negative_recall(
            M=1000 * 4096, nodes=5_000, edges=20_000, frontier_size=50, path_length=4
        )
        assert recall == pytest.approx(1.0 - bound)
        with pytest.raises(ValueError):
            reachability_false_positive_bound(1000, 10, 10, frontier_size=-1)

    def test_recall_improves_with_fingerprints(self):
        small_M = expected_true_negative_recall(M=500, nodes=5_000, edges=20_000, frontier_size=50)
        large_M = expected_true_negative_recall(M=500 * 65536, nodes=5_000, edges=20_000, frontier_size=50)
        assert large_M >= small_M

    def test_triangle_bias_positive_and_validated(self):
        bias = triangle_count_bias(M=1000, nodes=3_000, edges=15_000, true_triangles=500)
        assert bias >= 0.0
        with pytest.raises(ValueError):
            triangle_count_bias(1000, 10, 10, true_triangles=0)

    def test_memory_accuracy_tradeoff_monotone(self):
        rows = memory_accuracy_tradeoff(edges=100_000, nodes=20_000, fingerprint_bits=16, widths=[100, 200, 400])
        rates = [rate for _, _, rate in rows]
        assert rates == sorted(rates)
        with pytest.raises(ValueError):
            memory_accuracy_tradeoff(100, 10, 0, [10])
        with pytest.raises(ValueError):
            memory_accuracy_tradeoff(100, 10, 8, [0])
