"""Figure 11 — average relative error of node (aggregate out-weight) queries."""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.metrics.accuracy import average_relative_error


def _node_query_are(store, nodes, truth) -> float:
    # The protocol method the node_out_weights capability gate vouches for —
    # not the compound successor+edge fallback, which a registered sketch
    # with a native node query need not support.
    pairs = []
    for node in nodes:
        true_weight = truth.get(node, 0.0)
        if true_weight == 0.0:
            continue
        pairs.append((store.node_out_weight(node), true_weight))
    return average_relative_error(pairs)


def run_node_query_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Reproduce Figure 11: node-query ARE for GSS fsize 12/16 and TCM.

    TCM keeps the topology-query memory handicap the paper grants it (256x at
    paper scale), and still loses because its node hash range is only the
    matrix width.
    """
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment="fig11",
        description="node query ARE vs matrix width",
        columns=["dataset", "width", "structure", "are"],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        truth = stream.node_out_weights()
        nodes = config.sample_items([node for node in stream.nodes() if truth.get(node)])
        for width in config.widths_for(statistics):
            reference = None
            for bits in config.fingerprint_bits:
                sketch = config.feed(config.build_gss(width, bits), stream)
                if bits == max(config.fingerprint_bits):
                    reference = sketch
                result.add(
                    dataset=name,
                    width=width,
                    structure=f"GSS(fsize={bits})",
                    are=_node_query_are(sketch, nodes, truth),
                )
            tcm = config.feed(
                config.build_tcm(reference, config.tcm_topology_memory_ratio), stream
            )
            result.add(
                dataset=name,
                width=width,
                structure=f"TCM({int(config.tcm_topology_memory_ratio)}x memory)",
                are=_node_query_are(tcm, nodes, truth),
            )
            for extra_name in config.extra_sketches_with("node_out_weights"):
                extra = config.feed(
                    config.build_sketch(
                        extra_name, reference.config.matrix_memory_bytes()
                    ),
                    stream,
                )
                result.add(
                    dataset=name,
                    width=width,
                    structure=f"{extra_name}(equal memory)",
                    are=_node_query_are(extra, nodes, truth),
                )
    return result
