"""repro — reproduction of "Fast and Accurate Graph Stream Summarization" (ICDE 2019).

The package implements the Graph Stream Sketch (GSS) together with every
substrate and baseline the paper's evaluation relies on: the graph-stream
model, synthetic dataset analogs, exact stores, TCM / gMatrix / CM / CU /
gSketch / TRIEST baselines, an exact subgraph matcher, the query layer built
on the three graph query primitives, the analytical models of Section VI and
an experiment harness that regenerates every table and figure.

The stable public surface is :mod:`repro.api` — the :class:`GraphSummary`
protocol, the sketch registry/factory and the :class:`StreamSession`
ingestion facade.  Quickstart::

    from repro.api import StreamSession, build, list_sketches

    session = StreamSession("gss")            # auto-sized from the stream
    session.feed_dataset("email-EuAll")
    sketch = session.summary
    print(sketch.edge_query("n1", "n2"))      # float, or None when absent
    print(sketch.successor_query("n1"))

The concrete classes remain importable from their subpackages (and from here)
for code that needs structure-specific surface area.
"""

from repro import api
from repro.core import GSS, GSSBasic, GSSConfig
from repro.baselines import TCM, GMatrix, CountMinSketch, CountMinCUSketch, GSketch
from repro.exact import AdjacencyListGraph, AdjacencyMatrixGraph
from repro.streaming import GraphStream, StreamEdge

__version__ = "1.1.0"

__all__ = [
    "api",
    "GSS",
    "GSSBasic",
    "GSSConfig",
    "TCM",
    "GMatrix",
    "CountMinSketch",
    "CountMinCUSketch",
    "GSketch",
    "AdjacencyListGraph",
    "AdjacencyMatrixGraph",
    "GraphStream",
    "StreamEdge",
    "__version__",
]
