"""Table I — update speed of GSS, GSS without sampling, TCM and adjacency lists.

The paper reports million insertions per second (Mips) of a C++
implementation.  In pure Python the absolute throughput is orders of
magnitude lower (the calibration note for this reproduction flags exactly
that), so the table here reports edges/second *and* the speed of every
structure relative to TCM, which is the comparison the paper actually draws
("the speed of GSS is similar to TCM ... both much higher than the adjacency
list").
"""

from __future__ import annotations

from repro.exact.adjacency_list import AdjacencyListGraph
from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.metrics.throughput import (
    measure_batch_update_throughput,
    measure_update_throughput,
)


def _close_if_closeable(store: object) -> None:
    close = getattr(store, "close", None)
    if callable(close):
        close()


def run_update_speed_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Reproduce Table I: relative update throughput of the structures.

    Beyond the paper's four rows, a ``GSS(update_many)`` row measures the
    batched ingestion API so the scalar-vs-batch speedup is part of the
    regenerated table (``extras["batch_size"]`` controls the chunk size).
    """
    config = config or ExperimentConfig()
    repeats = config.extras.get("speed_repeats", 1)
    batch_size = config.extras.get("batch_size", 1024)
    fingerprint_bits = max(config.fingerprint_bits)
    result = ExperimentResult(
        experiment="tab1",
        description=f"update speed (edges/s and relative to TCM; backend={config.backend})",
        columns=["dataset", "structure", "edges_per_second", "mips", "relative_to_tcm"],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        width = config.recommended_width(statistics)
        edges = list(stream)

        def make_gss(sampling: bool = True):
            return config.build_gss(width, fingerprint_bits, sampling=sampling)

        def make_tcm():
            return config.build_tcm(reference, config.tcm_edge_memory_ratio)

        reference = make_gss()
        measurements = {
            "GSS": measure_update_throughput(make_gss, edges, label="GSS", repeats=repeats),
            "GSS(update_many)": measure_batch_update_throughput(
                make_gss,
                edges,
                label="GSS(update_many)",
                repeats=repeats,
                batch_size=batch_size,
            ),
            "GSS(no sampling)": measure_update_throughput(
                lambda: make_gss(sampling=False), edges, label="GSS(no sampling)", repeats=repeats
            ),
            "TCM": measure_update_throughput(
                make_tcm,
                edges,
                label="TCM",
                repeats=repeats,
            ),
            "TCM(update_many)": measure_batch_update_throughput(
                make_tcm,
                edges,
                label="TCM(update_many)",
                repeats=repeats,
                batch_size=batch_size,
            ),
            "Adjacency Lists": measure_update_throughput(
                AdjacencyListGraph, edges, label="Adjacency Lists", repeats=repeats
            ),
        }
        if config.workers:
            # Multi-process cluster rows at the reference GSS's memory: same
            # total sketch capacity, sharded over worker processes.  The
            # timed region includes the flush barrier (see
            # measure_batch_update_throughput) and each repeat tears its
            # worker processes down untimed.  ``--transport`` picks the data
            # plane; ``extras["transport_compare"]`` adds explicit shm and
            # pipe rows so the transports can be compared head to head.
            def make_cluster(transport):
                def build():
                    return config.build_sketch(
                        "sharded-gss",
                        reference.config.matrix_memory_bytes(),
                        workers=config.workers,
                        fingerprint_bits=fingerprint_bits,
                        rooms=config.rooms,
                        sequence_length=config.sequence_length,
                        candidate_buckets=config.candidate_buckets,
                        batch_size=batch_size,
                        transport=transport,
                    )

                return build

            cluster_transports = [config.transport]
            if config.extras.get("transport_compare"):
                # Add whichever concrete transports the main row does not
                # already resolve to (on a machine without shared memory
                # every name resolves to "pipe", so no extra rows appear).
                from repro.cluster.transport import shm_available

                available = ("shm", "pipe") if shm_available() else ("pipe",)
                resolved_main = (
                    config.transport
                    if config.transport in available
                    else available[0]
                )
                cluster_transports += [
                    name for name in available if name != resolved_main
                ]
            for transport in cluster_transports:
                cluster_label = (
                    f"sharded-gss(workers={config.workers})"
                    if transport == "auto"
                    else f"sharded-gss(workers={config.workers},transport={transport})"
                )
                measurements[cluster_label] = measure_batch_update_throughput(
                    make_cluster(transport),
                    edges,
                    label=cluster_label,
                    repeats=repeats,
                    batch_size=batch_size,
                    teardown=_close_if_closeable,
                )
        for extra_name in config.extra_sketches:
            # --sketch rows: any registered structure, granted the same
            # memory as the reference GSS (the comparison invariant).
            def make_extra(name=extra_name):
                return config.build_sketch(
                    name, reference.config.matrix_memory_bytes()
                )

            label = f"{extra_name}(equal memory)"
            measurements[label] = measure_update_throughput(
                make_extra,
                edges,
                label=label,
                repeats=repeats,
                # Sketches owning external resources (the sharded-gss
                # cluster's worker processes) are released per repeat instead
                # of lingering until garbage collection.
                teardown=_close_if_closeable,
            )
        tcm_rate = measurements["TCM"].items_per_second
        for label, measurement in measurements.items():
            result.add(
                dataset=name,
                structure=label,
                edges_per_second=measurement.items_per_second,
                mips=measurement.mips,
                relative_to_tcm=measurement.items_per_second / tcm_rate if tcm_rate else 0.0,
            )
    return result
