"""Exact adjacency-list store for streaming graphs.

This is both the ground truth used to score sketches and the "Adjacency
Lists" baseline of Table I: the paper accelerates it "using a map that records
the position of the list for each node", which corresponds to the per-node
dictionaries used here.  Updates are O(1) amortized; memory is O(|E| + |V|).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.queries.primitives import SummaryShims


class AdjacencyListGraph(SummaryShims):
    """Exact weighted directed multigraph aggregated by edge.

    Edge weights are the running SUM of update weights, exactly like the
    streaming-graph semantics of Definition 1.  An aggregated weight of zero
    (after deletions) removes the edge.
    """

    def __init__(self) -> None:
        self._out: Dict[Hashable, Dict[Hashable, float]] = {}
        self._in: Dict[Hashable, Dict[Hashable, float]] = {}
        self._edge_count = 0

    # -- updates -----------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` to edge ``source -> destination`` (negative deletes)."""
        out_edges = self._out.setdefault(source, {})
        in_edges = self._in.setdefault(destination, {})
        existed = destination in out_edges
        new_weight = out_edges.get(destination, 0.0) + weight
        if new_weight == 0.0 and existed:
            del out_edges[destination]
            del in_edges[source]
            self._edge_count -= 1
            return
        out_edges[destination] = new_weight
        in_edges[source] = new_weight
        if not existed:
            self._edge_count += 1

    # -- primitives ----------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Exact edge weight, or ``None`` when absent."""
        return self._out.get(source, {}).get(destination)

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Exact 1-hop successor set (possibly empty)."""
        return set(self._out.get(node, {}))

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Exact 1-hop precursor set (possibly empty)."""
        return set(self._in.get(node, {}))

    # -- whole-graph views --------------------------------------------------

    @property
    def edge_count(self) -> int:
        """Number of distinct edges currently present."""
        return self._edge_count

    @property
    def node_count(self) -> int:
        """Number of nodes that appear as an endpoint of at least one edge."""
        return len(set(self._out) | set(self._in))

    def nodes(self) -> Set[Hashable]:
        """All node identifiers present in the graph."""
        return set(self._out) | set(self._in)

    def edges(self) -> List[Tuple[Hashable, Hashable, float]]:
        """All ``(source, destination, weight)`` triples."""
        return [
            (source, destination, weight)
            for source, neighbors in self._out.items()
            for destination, weight in neighbors.items()
        ]

    def out_degree(self, node: Hashable) -> int:
        """Number of distinct out-going edges of ``node``."""
        return len(self._out.get(node, {}))

    def in_degree(self, node: Hashable) -> int:
        """Number of distinct in-coming edges of ``node``."""
        return len(self._in.get(node, {}))

    def node_out_weight(self, node: Hashable) -> float:
        """Exact node-query answer: sum of out-going edge weights."""
        return sum(self._out.get(node, {}).values())

    def node_in_weight(self, node: Hashable) -> float:
        """Sum of in-coming edge weights of ``node``."""
        return sum(self._in.get(node, {}).values())
