"""Repo-specific static analysis — the invariants behind "bit-identical".

The system's headline guarantee is that every deployment shape answers
queries bit-identically: python/numpy/native backends, single-process vs.
sharded vs. served.  That guarantee rests on invariants that no unit test
can pin forever — "hash once at the edge", "no wall-clock in placement",
"the ctypes bindings match kernel.c", "nothing blocks the serve event
loop".  This package machine-checks them on every PR:

``python -m repro.devtools.lint src/``

runs an AST-based checker suite (see :mod:`repro.devtools.checkers`) with
per-rule scoping, ``# repro: allow(<rule>): <why>`` suppressions and JSON
or human output.  The framework lives in :mod:`repro.devtools.framework`;
the small C-declaration parser used by the ABI cross-checker lives in
:mod:`repro.devtools.cdecl`.
"""

from repro.devtools.framework import (
    Checker,
    LintReport,
    Project,
    PyFile,
    Violation,
)

__all__ = ["Checker", "LintReport", "Project", "PyFile", "Violation"]
