"""Build/load machinery for the compiled ``native`` matrix backend.

The placement kernel lives in ``kernel.c`` next to this module and is
compiled **once per machine** with the system C compiler into a cached
shared library, then bound through :mod:`ctypes`.  Nothing here imports at
package-import time: availability probing, compilation and symbol binding
all happen lazily on first use, so pure-Python users never pay for it.

Design notes
------------
* The original plan for this backend was a numba ``@njit`` kernel; the
  toolchain this project pins ships a C compiler but no numba, so the kernel
  is plain C with the same shape a numba kernel would have (struct-of-arrays
  in, scalar control loop inside).  Both historical escape hatches are
  honored: setting ``REPRO_DISABLE_NATIVE=1`` *or* ``REPRO_DISABLE_NUMBA=1``
  disables the compiled backend exactly like ``REPRO_DISABLE_NUMPY`` does
  for the vectorized one.
* Compilation output is cached under ``$REPRO_NATIVE_CACHE`` (default
  ``~/.cache/repro-gss/native``) keyed by a hash of the kernel source and
  compile flags, so rebuilding only happens when the kernel changes.  The
  write is an atomic rename: concurrent first builds (e.g. cluster worker
  processes racing) converge on one library.
* :func:`warm_up` is the explicit warm-up hook: it compiles and binds the
  kernel (or reports failure) so the one-time build cost never lands inside
  a timed region.  Backend construction calls it implicitly — store
  construction is untimed in every benchmark harness in this repo.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

#: Slot values shared with repro.core.backends / kernel.c.
SLOT_BUFFERED = -1
SLOT_MISSING = -2

_KERNEL_SOURCE = Path(__file__).with_name("kernel.c")
#: Default build: optimized, and warning-clean by construction — the kernel
#: must compile silently under -Wall -Wextra (CI promotes them to -Werror
#: in the sanitizer leg; keeping them on here means a warning regression is
#: visible in every local build log, not just CI).
_COMPILE_FLAGS = ("-O3", "-fPIC", "-shared", "-Wall", "-Wextra")
#: ``REPRO_NATIVE_SANITIZE=1`` build: ASan+UBSan, aborts on first report.
#: -O1 keeps stack traces honest; -Werror makes any new warning fatal.
_SANITIZE_FLAGS = (
    "-O1",
    "-g",
    "-fPIC",
    "-shared",
    "-Wall",
    "-Wextra",
    "-Werror",
    "-Wmissing-prototypes",
    "-fsanitize=address,undefined",
    "-fno-sanitize-recover=all",
)


def sanitize_enabled() -> bool:
    """True when ``REPRO_NATIVE_SANITIZE=1`` selects the ASan/UBSan build."""
    return bool(os.environ.get("REPRO_NATIVE_SANITIZE"))


def compile_flags() -> tuple:
    """The exact flag tuple the next (or cached) kernel build uses."""
    return _SANITIZE_FLAGS if sanitize_enabled() else _COMPILE_FLAGS

_lock = threading.Lock()
#: Tri-state load cache: None = not attempted, (lib, None) = loaded,
#: (None, reason) = permanently failed for this process.
_load_state: Optional[tuple] = None


class NativeUnavailable(RuntimeError):
    """The compiled kernel cannot be built or loaded on this machine."""


def native_disabled() -> bool:
    """True when an escape-hatch env var turns the compiled backend off.

    ``REPRO_DISABLE_NATIVE`` is the canonical switch; ``REPRO_DISABLE_NUMBA``
    is honored as an alias (the backend was specified as a jitted kernel —
    scripts written against that contract keep working).
    """
    return bool(
        os.environ.get("REPRO_DISABLE_NATIVE") or os.environ.get("REPRO_DISABLE_NUMBA")
    )


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-gss" / "native"


def _source_tag() -> str:
    digest = hashlib.sha256()
    digest.update(_KERNEL_SOURCE.read_bytes())
    digest.update(" ".join(compile_flags()).encode())
    return digest.hexdigest()[:16]


def _compile(compiler: str, target: Path) -> None:
    """Compile kernel.c to ``target`` atomically (tmp file + rename)."""
    target.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=target.stem, suffix=".so.tmp", dir=str(target.parent)
    )
    os.close(descriptor)
    try:
        subprocess.run(
            [compiler, *compile_flags(), "-o", tmp_name, str(_KERNEL_SOURCE)],
            check=True,
            capture_output=True,
            text=True,
        )
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _bind(path: Path) -> ctypes.CDLL:
    lib = ctypes.CDLL(str(path))
    c = ctypes
    lib.gss_new.restype = c.c_void_p
    lib.gss_new.argtypes = []
    lib.gss_free.restype = None
    lib.gss_free.argtypes = [c.c_void_p]
    lib.gss_map_get.restype = c.c_int64
    lib.gss_map_get.argtypes = [c.c_void_p, c.c_uint64]
    lib.gss_map_put.restype = c.c_int
    lib.gss_map_put.argtypes = [c.c_void_p, c.c_uint64, c.c_int64]
    lib.gss_map_len.restype = c.c_int64
    lib.gss_map_len.argtypes = [c.c_void_p]
    lib.gss_ingest_batch.restype = c.c_int64
    lib.gss_ingest_batch.argtypes = [
        c.c_void_p,  # ctx
        c.c_void_p, c.c_void_p, c.c_int64,  # keys, weights, n
        c.c_uint64, c.c_uint64,  # hash_range, fp_range
        c.c_int64, c.c_int64,  # width, rooms
        c.c_int64, c.c_int64,  # seq_length, candidates
        c.c_int32, c.c_int32,  # square_hashing, sampling
        c.c_uint64, c.c_uint64, c.c_uint64,  # lcg a, b, p
        c.c_int64,  # size
        c.c_void_p, c.c_void_p,  # rows, cols
        c.c_void_p, c.c_void_p,  # src_fp, dst_fp
        c.c_void_p, c.c_void_p,  # src_idx, dst_idx
        c.c_void_p,  # room_weights
        c.c_void_p,  # fill
        c.c_void_p, c.c_void_p, c.c_void_p,  # spill keys/sums/count
        c.c_void_p, c.c_void_p, c.c_void_p,  # rebuf keys/sums/count
    ]
    lib.gss_ingest_text_batch.restype = c.c_int64
    lib.gss_ingest_text_batch.argtypes = [
        c.c_void_p,  # ctx
        c.c_char_p, c.c_int64,  # blob, blob_len
        c.c_void_p, c.c_int64,  # weights, n
        c.c_uint64,  # seeded FNV initial state
        c.c_uint64, c.c_uint64,  # hash_range, fp_range
        c.c_int64, c.c_int64,  # width, rooms
        c.c_int64, c.c_int64,  # seq_length, candidates
        c.c_int32, c.c_int32,  # square_hashing, sampling
        c.c_uint64, c.c_uint64, c.c_uint64,  # lcg a, b, p
        c.c_int64,  # size
        c.c_void_p, c.c_void_p,  # rows, cols
        c.c_void_p, c.c_void_p,  # src_fp, dst_fp
        c.c_void_p, c.c_void_p,  # src_idx, dst_idx
        c.c_void_p,  # room_weights
        c.c_void_p,  # fill
        c.c_void_p, c.c_void_p, c.c_void_p,  # spill keys/sums/count
        c.c_void_p, c.c_void_p, c.c_void_p,  # rebuf keys/sums/count
        c.c_void_p, c.c_void_p, c.c_void_p,  # new-node offs/lens/hashes
        c.c_void_p,  # new-node count
    ]
    return lib


def _load() -> tuple:
    """Attempt compile+bind once per process; cache the outcome."""
    global _load_state
    with _lock:
        if _load_state is not None:
            return _load_state
        try:
            if sanitize_enabled() and "asan" not in os.environ.get("LD_PRELOAD", ""):
                # dlopen-ing an ASan-instrumented library into a process
                # that was not started under the ASan runtime aborts the
                # interpreter outright ("ASan runtime does not come first")
                # — there is no catchable exception, so refuse up front.
                # scripts/native_sanitize.py sets the preload correctly.
                raise NativeUnavailable(
                    "REPRO_NATIVE_SANITIZE=1 requires the ASan runtime to be "
                    "preloaded; run through scripts/native_sanitize.py or set "
                    "LD_PRELOAD=$(cc -print-file-name=libasan.so)"
                )
            tag = _source_tag()
            target = _cache_dir() / f"kernel-{tag}.so"
            if not target.exists():
                compiler = _find_compiler()
                if compiler is None:
                    raise NativeUnavailable(
                        "no C compiler (cc/gcc/clang) found to build the "
                        "native placement kernel"
                    )
                _compile(compiler, target)
            _load_state = (_bind(target), None)
        except NativeUnavailable as error:
            _load_state = (None, str(error))
        except (OSError, subprocess.CalledProcessError) as error:
            detail = getattr(error, "stderr", "") or str(error)
            _load_state = (None, f"native kernel build failed: {detail}".strip())
        return _load_state


def native_available() -> bool:
    """Whether the compiled backend can actually run here.

    Checks the escape hatches fresh on every call (tests toggle them), then
    compiles/binds the kernel on the first affirmative answer.  NumPy is
    also required — the kernel writes through numpy array buffers.
    """
    if native_disabled():
        return False
    from repro.hashing.vectorized import NUMPY_AVAILABLE

    if not NUMPY_AVAILABLE:
        return False
    lib, _ = _load()
    return lib is not None


def warm_up() -> bool:
    """Explicit warm-up hook: build and bind the kernel ahead of timing.

    Returns True when the native backend is ready, False when it is
    disabled/unavailable (callers then fall back per ``auto`` resolution).
    Safe to call repeatedly; after the first call it is a cache lookup.
    """
    return native_available()


def load_native() -> ctypes.CDLL:
    """The bound kernel library, building it first if needed."""
    if native_disabled():
        raise NativeUnavailable(
            "the native backend is disabled by REPRO_DISABLE_NATIVE/"
            "REPRO_DISABLE_NUMBA"
        )
    lib, reason = _load()
    if lib is None:
        raise NativeUnavailable(reason)
    return lib


def _reset_for_tests() -> None:
    """Forget the process-level load cache (test hook)."""
    global _load_state
    with _lock:
        _load_state = None
