"""The instrument registry of :mod:`repro.obs` — counters, gauges, histograms.

One :class:`MetricsRegistry` holds a set of named *families*; each family
holds one instrument per distinct label set (``shard``/``backend``/``op``
style).  Three design constraints shape everything here:

* **mergeable snapshots** — a cluster is many processes, so telemetry must
  compose: ``snapshot()`` returns a plain JSON-safe dict and
  :func:`merge_snapshots` combines any number of them associatively and
  commutatively (counters and histogram buckets add, gauges take the max),
  which is what lets worker snapshots fold into the parent's in any order
  — ``worker ⊕ worker ⊕ parent`` equals ``worker ⊕ (worker ⊕ parent)``;
* **fixed log-scale latency buckets** — :data:`LATENCY_BUCKETS` doubles
  from 1µs to ~67s, so two histograms recorded by different processes
  always share bucket bounds and merge bucket-by-bucket (variable bucket
  schemes cannot merge without resampling);
* **bounded label cardinality** — a family accepts at most
  ``max_series`` distinct label sets; beyond that, new label sets collapse
  into one ``~overflow~`` series (and are counted in ``dropped_series``),
  so a bug that labels by node id cannot grow the registry without bound.

Instruments are plain attribute-holding objects updated without locks: every
writer in this codebase is already serialized (the serve event loop, the
cluster lock, one worker process per registry), and the registry lock guards
only get-or-create.  Deliberately **no wall-clock reads live here** — timing
belongs to :mod:`repro.obs.trace` — so the registry stays inert under the
determinism lint.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "OVERFLOW_LABEL",
    "histogram_quantile",
    "merge_snapshots",
    "subtract_snapshots",
]

OBS_FORMAT_VERSION = 1

#: Log-scale (powers of two) latency bucket upper bounds in seconds: 1µs,
#: 2µs, 4µs, ... up to ~67s, plus the implicit +Inf overflow bucket.  Fixed
#: for every histogram by default so snapshots from different processes
#: always merge bucket-by-bucket.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 2.0**exp for exp in range(27))

#: Label value that absorbs series beyond a family's cardinality bound.
OVERFLOW_LABEL = "~overflow~"

#: Default bound on distinct label sets per family (the cardinality guard).
DEFAULT_MAX_SERIES = 256


def _series_key(labels: Mapping[str, str]) -> str:
    """Canonical (sorted, JSON-safe) dict key for one label set."""
    return ",".join(f"{key}={value}" for key, value in sorted(labels.items()))


class Counter:
    """A monotonically increasing count (events, items, bytes)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]) -> None:
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (open connections, queue depth)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]) -> None:
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """High-water tracking: keep the largest value ever set."""
        if value > self.value:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A distribution over fixed bucket bounds (latencies, sizes).

    ``counts`` is *non-cumulative*: ``counts[i]`` observations fell into
    ``(bounds[i-1], bounds[i]]`` and the final entry is the overflow bucket
    beyond ``bounds[-1]``.  The Prometheus exposition layer cumulates on
    render.
    """

    __slots__ = ("labels", "bounds", "counts", "sum", "count")

    def __init__(self, labels: Dict[str, str], bounds: Sequence[float]) -> None:
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left finds the first bound >= value: exactly the smallest
        # `le` bucket that contains it; past the last bound -> overflow slot.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (linear within the landing bucket)."""
        return histogram_quantile(self.bounds, self.counts, q)


def histogram_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Estimate a quantile from bucketed counts, or ``None`` when empty.

    Interpolates linearly inside the bucket the target rank lands in; the
    overflow bucket is clamped to the last finite bound (the estimate cannot
    exceed what the bucket scheme can resolve).
    """
    total = sum(counts)
    if total == 0:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    target = q * total
    cumulative = 0.0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= target:
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index] if index < len(bounds) else bounds[-1]
            fraction = (target - cumulative) / bucket_count
            return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        cumulative += bucket_count
    return bounds[-1] if bounds else None  # pragma: no cover - defensive


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All instruments sharing one name/kind, keyed by label set."""

    __slots__ = ("name", "kind", "help", "buckets", "series", "dropped", "max_series")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Sequence[float]],
        max_series: int,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets: Optional[Tuple[float, ...]] = (
            tuple(buckets) if buckets is not None else None
        )
        self.series: Dict[str, object] = {}
        self.dropped = 0
        self.max_series = max_series

    def child(self, labels: Dict[str, str]):
        key = _series_key(labels)
        instrument = self.series.get(key)
        if instrument is not None:
            return instrument
        if len(self.series) >= self.max_series:
            # Cardinality guard: collapse every further label set into one
            # overflow series so a high-cardinality label (a node id, a
            # client address) cannot grow the registry without bound.
            self.dropped += 1
            overflow = {name: OVERFLOW_LABEL for name in labels} or {
                "overflow": OVERFLOW_LABEL
            }
            key = _series_key(overflow)
            instrument = self.series.get(key)
            if instrument is not None:
                return instrument
            labels = overflow
        if self.kind == "histogram":
            instrument = Histogram(labels, self.buckets or LATENCY_BUCKETS)
        else:
            instrument = _KINDS[self.kind](labels)
        self.series[key] = instrument
        return instrument

    def snapshot(self) -> Dict:
        document: Dict = {
            "kind": self.kind,
            "help": self.help,
            "series": {},
        }
        if self.kind == "histogram":
            document["buckets"] = list(self.buckets or LATENCY_BUCKETS)
        if self.dropped:
            document["dropped_series"] = self.dropped
        for key, instrument in self.series.items():
            if self.kind == "histogram":
                document["series"][key] = {
                    "labels": dict(instrument.labels),
                    "counts": list(instrument.counts),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
            else:
                document["series"][key] = {
                    "labels": dict(instrument.labels),
                    "value": instrument.value,
                }
        return document


class MetricsRegistry:
    """A process-local set of instrument families.

    ``counter()``/``gauge()``/``histogram()`` get-or-create and return the
    instrument for the given name + labels; hot paths should hold on to the
    returned instrument instead of re-resolving it per event.  All label
    values are coerced to ``str`` (label *names* ``name``/``help_text``/
    ``buckets``/``max_series`` are reserved by the method signatures).
    """

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES) -> None:
        self._families: Dict[str, _Family] = {}
        self._max_series = max_series
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = _Family(name, kind, help_text, buckets, self._max_series)
                    self._families[name] = family
        if family.kind != kind:
            raise ValueError(
                f"instrument {name!r} is a {family.kind}, not a {kind}"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    def counter(self, name: str, help_text: str = "", **labels: object) -> Counter:
        family = self._family(name, "counter", help_text)
        with self._lock:
            return family.child({key: str(value) for key, value in labels.items()})

    def gauge(self, name: str, help_text: str = "", **labels: object) -> Gauge:
        family = self._family(name, "gauge", help_text)
        with self._lock:
            return family.child({key: str(value) for key, value in labels.items()})

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        family = self._family(name, "histogram", help_text, buckets)
        with self._lock:
            return family.child({key: str(value) for key, value in labels.items()})

    def snapshot(self) -> Dict:
        """A JSON-safe, mergeable snapshot of every family."""
        with self._lock:
            families = list(self._families.items())
        return {
            "obs_format": OBS_FORMAT_VERSION,
            "families": {name: family.snapshot() for name, family in families},
        }


def _empty_snapshot() -> Dict:
    return {"obs_format": OBS_FORMAT_VERSION, "families": {}}


def _copy_series(series: Dict) -> Dict:
    copied = dict(series)
    copied["labels"] = dict(series.get("labels", {}))
    if "counts" in series:
        copied["counts"] = list(series["counts"])
    return copied


def merge_snapshots(*snapshots: Optional[Dict]) -> Dict:
    """Fold any number of :meth:`MetricsRegistry.snapshot` documents into one.

    Associative and commutative: counters and histograms add (value, bucket
    counts, sum, count), gauges keep the maximum (the only associative
    choice that stays meaningful for levels and high-water marks), help
    strings keep the first non-empty text.  ``None`` entries are skipped so
    callers can pass optional worker snapshots straight through.  Raises
    ``ValueError`` when the same family name arrives with conflicting kinds
    or bucket bounds — silent misaccumulation would be worse than an error.
    """
    merged = _empty_snapshot()
    families: Dict[str, Dict] = merged["families"]
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, incoming in snapshot.get("families", {}).items():
            target = families.get(name)
            if target is None:
                families[name] = {
                    **{k: v for k, v in incoming.items() if k != "series"},
                    "series": {
                        key: _copy_series(series)
                        for key, series in incoming.get("series", {}).items()
                    },
                }
                continue
            if target["kind"] != incoming["kind"]:
                raise ValueError(
                    f"family {name!r} merges {target['kind']} with "
                    f"{incoming['kind']}"
                )
            if target.get("buckets") != incoming.get("buckets"):
                raise ValueError(f"family {name!r} merges mismatched buckets")
            if not target.get("help") and incoming.get("help"):
                target["help"] = incoming["help"]
            if incoming.get("dropped_series"):
                target["dropped_series"] = target.get("dropped_series", 0) + incoming[
                    "dropped_series"
                ]
            for key, series in incoming.get("series", {}).items():
                existing = target["series"].get(key)
                if existing is None:
                    target["series"][key] = _copy_series(series)
                elif target["kind"] == "histogram":
                    existing["counts"] = [
                        a + b for a, b in zip(existing["counts"], series["counts"])
                    ]
                    existing["sum"] += series["sum"]
                    existing["count"] += series["count"]
                elif target["kind"] == "counter":
                    existing["value"] += series["value"]
                else:  # gauge
                    existing["value"] = max(existing["value"], series["value"])
    return merged


def subtract_snapshots(after: Optional[Dict], before: Optional[Dict]) -> Dict:
    """The delta ``after - before`` (a load-test's server-side increment).

    Counters and histograms subtract (clamped at zero, so a server restart
    between the two scrapes degrades to "everything happened after");
    gauges keep the ``after`` level (a level has no meaningful delta).
    Families or series absent from ``before`` pass through unchanged.
    """
    if not after:
        return _empty_snapshot()
    result = merge_snapshots(after)  # deep copy with the same shape
    if not before:
        return result
    for name, family in result["families"].items():
        baseline = before.get("families", {}).get(name)
        if baseline is None or family["kind"] == "gauge":
            continue
        for key, series in family["series"].items():
            base = baseline.get("series", {}).get(key)
            if base is None:
                continue
            if family["kind"] == "histogram":
                series["counts"] = [
                    max(0, a - b) for a, b in zip(series["counts"], base["counts"])
                ]
                series["sum"] = max(0.0, series["sum"] - base["sum"])
                series["count"] = max(0, series["count"] - base["count"])
            else:
                series["value"] = max(0.0, series["value"] - base["value"])
    return result
