"""The graph query primitives every store and sketch implements.

The paper's Definition 4 fixes the contract:

* **edge query** — given an edge ``(s, d)`` return its weight, or ``-1`` if
  the edge does not exist;
* **1-hop successor query** — given a node ``v`` return the set of nodes that
  are 1-hop reachable from ``v`` (empty result is reported as ``{-1}`` in the
  paper; we return an empty set and expose the sentinel for callers that want
  the paper's exact convention);
* **1-hop precursor query** — symmetric, nodes that reach ``v`` in one hop.

Exact stores answer them exactly; sketches answer them approximately.  The
compound queries in this package only rely on this protocol, so they run
unchanged on top of either.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Protocol, Set, runtime_checkable

#: Sentinel returned by edge queries when the edge is not present.
EDGE_NOT_FOUND: float = -1.0

#: Sentinel set returned by the paper for empty successor/precursor results.
NO_NEIGHBORS: Set[int] = frozenset({-1})


@runtime_checkable
class GraphQueryInterface(Protocol):
    """Protocol shared by exact stores and sketches."""

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Apply one stream item (add ``weight`` to edge ``source -> destination``)."""

    def edge_query(self, source: Hashable, destination: Hashable) -> float:
        """Return the aggregated weight of the edge, or ``EDGE_NOT_FOUND``."""

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Return the 1-hop successors of ``node`` (empty set when none)."""

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Return the 1-hop precursors of ``node`` (empty set when none)."""


def consume_stream(
    store: GraphQueryInterface, edges: Iterable, batch_size: int = 1024
) -> GraphQueryInterface:
    """Feed every item of a stream into ``store`` and return it.

    Accepts anything iterable over :class:`~repro.streaming.edge.StreamEdge`
    (a ``GraphStream``, list, generator, ...).  Stores that expose the
    batched ``update_many`` API (every sketch in :mod:`repro.core`) are fed
    in ``batch_size`` chunks; others fall back to item-at-a-time ``update``.
    """
    update_many = getattr(store, "update_many", None)
    if update_many is None:
        for edge in edges:
            store.update(edge.source, edge.destination, edge.weight)
        return store
    batch = []
    for edge in edges:
        batch.append((edge.source, edge.destination, edge.weight))
        if len(batch) >= batch_size:
            update_many(batch)
            batch = []
    if batch:
        update_many(batch)
    return store


def as_paper_result(neighbors: Set[Hashable]) -> Set:
    """Convert an empty neighbor set to the paper's ``{-1}`` convention."""
    return set(neighbors) if neighbors else set(NO_NEIGHBORS)
