"""Reachability queries via breadth-first search over successor queries.

Because sketches never lose edges (only add spurious ones), reachability has
no false negatives: if ``d`` is reachable from ``s`` in the streaming graph,
every summary reports "reachable".  The interesting metric is therefore the
true-negative recall on unreachable pairs (Figure 12), which this module's BFS
makes measurable for any store implementing the primitives.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Optional, Set

from repro.queries.primitives import GraphQueryInterface


def reachable_set(
    store: GraphQueryInterface,
    source: Hashable,
    max_nodes: Optional[int] = None,
) -> Set[Hashable]:
    """All nodes reachable from ``source`` (including itself).

    ``max_nodes`` bounds the BFS frontier for very dense false-positive
    neighbourhoods; ``None`` explores exhaustively.
    """
    visited: Set[Hashable] = {source}
    queue = deque([source])
    while queue:
        if max_nodes is not None and len(visited) >= max_nodes:
            break
        current = queue.popleft()
        for successor in store.successor_query(current):
            if successor not in visited:
                visited.add(successor)
                queue.append(successor)
    return visited


def is_reachable(
    store: GraphQueryInterface,
    source: Hashable,
    destination: Hashable,
    max_nodes: Optional[int] = None,
) -> bool:
    """True when ``destination`` is reachable from ``source`` in the summary."""
    if source == destination:
        return True
    visited: Set[Hashable] = {source}
    queue = deque([source])
    while queue:
        if max_nodes is not None and len(visited) >= max_nodes:
            return False
        current = queue.popleft()
        for successor in store.successor_query(current):
            if successor == destination:
                return True
            if successor not in visited:
                visited.add(successor)
                queue.append(successor)
    return False
