"""Hashing substrate used throughout the GSS reproduction.

The paper relies on three hashing building blocks:

* a node hash ``H(v)`` with a configurable value range ``[0, M)`` where
  ``M = m * F`` (matrix width times fingerprint range);
* the address/fingerprint split ``h(v) = H(v) // F`` and ``f(v) = H(v) % F``;
* linear-congruential (LR) sequences used by *square hashing* to derive ``r``
  alternative row/column addresses per node and the ``k`` candidate buckets
  sampled per edge (Section V, Equations 1-5).

Everything here is deterministic given a seed so experiments are repeatable
(:data:`~repro.hashing.hash_functions.HASH_VERSION` tracks the mapping; see
its changelog before comparing persisted hashes across versions).  When NumPy
is installed, :mod:`repro.hashing.vectorized` provides bit-identical batch
versions of every primitive for the vectorized matrix backend.
"""

from repro.hashing.hash_functions import (
    HASH_VERSION,
    HashCounter,
    NodeHasher,
    count_key_hashes,
    fingerprint_of,
    hash_bytes,
    hash_key,
    hash_string,
    split_hash,
)
from repro.hashing.linear_congruence import (
    LinearCongruentialSequence,
    address_sequence,
    candidate_sequence,
    default_lcg_params,
)
from repro.hashing.vectorized import NUMPY_AVAILABLE

__all__ = [
    "HASH_VERSION",
    "HashCounter",
    "NUMPY_AVAILABLE",
    "NodeHasher",
    "count_key_hashes",
    "fingerprint_of",
    "hash_bytes",
    "hash_key",
    "hash_string",
    "split_hash",
    "LinearCongruentialSequence",
    "address_sequence",
    "candidate_sequence",
    "default_lcg_params",
]
