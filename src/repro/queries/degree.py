"""Degree and degree-distribution estimates built on the query primitives.

Node degrees are one of the basic statistics monitored over graph streams
(detecting super-spreaders in network traffic is the paper's first use case).
On top of a sketch the 1-hop successor / precursor sets can only contain false
positives, so the degree estimates here are upper bounds of the true degrees —
the same one-sided error the paper reports for the successor/precursor
primitives themselves.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.queries.primitives import GraphQueryInterface


def out_degree(store: GraphQueryInterface, node: Hashable) -> int:
    """Estimated out-degree of ``node`` (number of distinct successors)."""
    return len(store.successor_query(node))


def in_degree(store: GraphQueryInterface, node: Hashable) -> int:
    """Estimated in-degree of ``node`` (number of distinct precursors)."""
    return len(store.precursor_query(node))


def total_degree(store: GraphQueryInterface, node: Hashable) -> int:
    """Estimated total degree: out-degree plus in-degree."""
    return out_degree(store, node) + in_degree(store, node)


def degree_table(
    store: GraphQueryInterface, nodes: Iterable[Hashable]
) -> Dict[Hashable, Tuple[int, int]]:
    """``{node: (out_degree, in_degree)}`` for every node in ``nodes``."""
    return {node: (out_degree(store, node), in_degree(store, node)) for node in nodes}


def top_k_by_out_degree(
    store: GraphQueryInterface, nodes: Iterable[Hashable], k: int
) -> List[Tuple[Hashable, int]]:
    """The ``k`` nodes with the largest estimated out-degree.

    Ties are broken by the node representation so the result is deterministic.
    Finding the heaviest emitters is how a monitoring system would look for
    super-spreaders / scanners in the network-traffic use case.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    scored = [(node, out_degree(store, node)) for node in nodes]
    scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return scored[:k]


def top_k_by_in_degree(
    store: GraphQueryInterface, nodes: Iterable[Hashable], k: int
) -> List[Tuple[Hashable, int]]:
    """The ``k`` nodes with the largest estimated in-degree (popular targets)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    scored = [(node, in_degree(store, node)) for node in nodes]
    scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return scored[:k]


def out_degree_distribution(
    store: GraphQueryInterface, nodes: Iterable[Hashable]
) -> Dict[int, int]:
    """Histogram ``{degree: node count}`` of estimated out-degrees."""
    histogram: Counter = Counter()
    for node in nodes:
        histogram[out_degree(store, node)] += 1
    return dict(histogram)


def in_degree_distribution(
    store: GraphQueryInterface, nodes: Iterable[Hashable]
) -> Dict[int, int]:
    """Histogram ``{degree: node count}`` of estimated in-degrees."""
    histogram: Counter = Counter()
    for node in nodes:
        histogram[in_degree(store, node)] += 1
    return dict(histogram)


def average_out_degree(store: GraphQueryInterface, nodes: Iterable[Hashable]) -> float:
    """Mean estimated out-degree over ``nodes`` (0.0 for an empty iterable)."""
    node_list = list(nodes)
    if not node_list:
        return 0.0
    return sum(out_degree(store, node) for node in node_list) / len(node_list)


def degree_skewness(distribution: Dict[int, int]) -> float:
    """A simple skew indicator: max degree divided by the mean degree.

    Values far above 1 indicate the power-law degree skew that motivates
    square hashing (Section V-A); the ablation experiments use this to relate
    buffer size to workload skew.
    """
    total_nodes = sum(distribution.values())
    if total_nodes == 0:
        return 0.0
    total_degree_mass = sum(degree * count for degree, count in distribution.items())
    mean = total_degree_mass / total_nodes
    if mean == 0:
        return 0.0
    return max(distribution) / mean
