"""Wire protocol shared by :class:`SummaryServer` and :class:`ServeClient`.

Every message is one length-prefixed frame::

    header:  kind (u8) | payload length (u32, big-endian)
    payload: kind-dependent

Two frame kinds exist:

* ``FRAME_JSON`` — a UTF-8 JSON object.  Every control message (hello,
  queries, flush, metrics, acks, busy, errors) travels this way, and so does
  the ingest fallback when either side lacks NumPy.  Requests carry an
  ``"op"`` field; every request receives exactly one reply frame, in request
  order — the same strict-FIFO discipline as the cluster's worker pipes,
  and for the same reason: a query sent after a run of ingest frames is
  guaranteed to observe them.
* ``FRAME_HBATCH`` — a binary ingest frame: the routing-hash column followed
  by the cluster transport's :func:`~repro.cluster.transport.encode_hashed_batch`
  blob (node-hash columns + weights + pickled keys).  The payload reuses the
  PR-6 encoding verbatim, extended with the one column the shm ring drops
  (route hashes travel pre-split there), so a batch hashed once on the
  client is routed and ingested by the workers with **zero further hash
  work** — the hash-once invariant extended edge-to-worker across the
  network.  Like the shm ring, the blob is native-endian and carries pickled
  keys: the protocol assumes a same-architecture, *trusted* network (bind to
  loopback or a private interface).

Query answers are JSON values with one extension: sets — the
successor/precursor result type — are tagged ``{"__set__": [...]}`` so they
survive the round trip with their type.  JSON's shortest-repr float encoding
round-trips IEEE doubles exactly, which is what makes served answers
bit-identical to in-process ones.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional, Tuple

from repro.hashing.vectorized import NUMPY_AVAILABLE, load_numpy
from repro.streaming.batch import HashedBatch, HashSpec

__all__ = [
    "FRAME_HBATCH",
    "FRAME_JSON",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_ingest_payload",
    "decode_json_payload",
    "decode_value",
    "encode_ingest_frame",
    "encode_value",
    "pack_frame",
    "pack_json",
    "read_frame",
    "spec_from_wire",
    "spec_to_wire",
]

PROTOCOL_VERSION = 1

FRAME_JSON = 1
FRAME_HBATCH = 2

#: Refuse frames beyond this size instead of allocating unboundedly for a
#: corrupt (or hostile) length prefix.  64 MiB fits any sane ingest batch.
MAX_FRAME_BYTES = 64 << 20

_HEADER = struct.Struct("!BI")
_ROUTE_HEADER = struct.Struct("=Q")


class ProtocolError(RuntimeError):
    """The peer sent bytes that do not parse as a protocol frame."""


# -- framing -----------------------------------------------------------------


def pack_frame(kind: int, payload: bytes) -> bytes:
    """One wire frame: header + payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit; lower the ingest batch size"
        )
    return _HEADER.pack(kind, len(payload)) + payload


def pack_json(document: dict) -> bytes:
    """One JSON control frame."""
    return pack_frame(FRAME_JSON, json.dumps(document).encode("utf-8"))


def read_frame(read_exact) -> Tuple[int, bytes]:
    """Read one frame through ``read_exact(n) -> bytes`` (raises on EOF).

    Shared by the synchronous client (socket file wrapper) and any
    blocking-IO consumer; the asyncio server uses ``reader.readexactly``
    with the same header constants directly.
    """
    header = read_exact(_HEADER.size)
    kind, length = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the protocol limit")
    payload = read_exact(length) if length else b""
    return kind, payload


def decode_json_payload(payload: bytes) -> dict:
    """Parse a ``FRAME_JSON`` payload, normalizing parse errors."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed JSON frame: {error}") from None
    if not isinstance(document, dict):
        raise ProtocolError("JSON frames must be objects")
    return document


HEADER_SIZE = _HEADER.size
unpack_header = _HEADER.unpack


# -- binary ingest frames ----------------------------------------------------


def encode_ingest_frame(batch: HashedBatch) -> bytes:
    """Encode a routed :class:`HashedBatch` as one binary ingest frame.

    Layout: ``=Q`` route count, the u64 route-hash column, then the cluster
    transport's hashed-batch blob.  Requires NumPy on the encoding side (the
    columns are arrays); callers fall back to a JSON ingest frame otherwise.
    A batch without route hashes encodes a zero-length route column — the
    server then routes it itself (one routing-hash pass, node hashes still
    reused).
    """
    from repro.cluster.transport import encode_hashed_batch

    np = load_numpy()
    blob = encode_hashed_batch(batch)
    if batch.route_hashes is None:
        return pack_frame(FRAME_HBATCH, _ROUTE_HEADER.pack(0) + blob)
    routes = np.ascontiguousarray(np.asarray(batch.route_hashes, dtype=np.uint64))
    return pack_frame(
        FRAME_HBATCH,
        b"".join((_ROUTE_HEADER.pack(len(routes)), routes.tobytes(), blob)),
    )


def decode_ingest_payload(payload: bytes, spec: Optional[HashSpec]) -> HashedBatch:
    """Decode a binary ingest payload back into a :class:`HashedBatch`.

    ``spec`` is the *server's* hash spec (node family + routing seed): the
    client built the batch against the spec advertised in the hello frame,
    so stamping it here lets ``ShardedSummary.update_many_hashed`` accept
    the columns without re-hashing.  Requires NumPy (servers without it
    never advertise binary ingest).
    """
    from repro.cluster.transport import decode_hashed_batch

    np = load_numpy()
    (route_count,) = _ROUTE_HEADER.unpack_from(payload, 0)
    cursor = _ROUTE_HEADER.size
    routes = None
    if route_count:
        routes = np.frombuffer(payload, dtype=np.uint64, count=route_count, offset=cursor)
        cursor += 8 * route_count
    batch = decode_hashed_batch(payload, cursor, len(payload) - cursor, spec)
    if routes is not None:
        if len(batch) != route_count:
            raise ProtocolError(
                f"route column of {route_count} entries for a batch of "
                f"{len(batch)} items"
            )
        batch.route_hashes = routes
    return batch


def binary_ingest_supported() -> bool:
    """Whether this side can encode/decode ``FRAME_HBATCH`` payloads."""
    return NUMPY_AVAILABLE


# -- hash specs and query values over JSON -----------------------------------


def spec_to_wire(spec: Optional[HashSpec]) -> Optional[dict]:
    """A :class:`HashSpec` as a JSON-safe object (``None`` passes through)."""
    if spec is None:
        return None
    return {
        "seed": spec.seed,
        "hash_range": spec.hash_range,
        "routing_seed": spec.routing_seed,
    }


def spec_from_wire(document: Optional[dict]) -> Optional[HashSpec]:
    """Rebuild a :class:`HashSpec` from its wire form."""
    if document is None:
        return None
    return HashSpec(
        seed=document["seed"],
        hash_range=document["hash_range"],
        routing_seed=document.get("routing_seed"),
    )


def encode_value(value: Any) -> Any:
    """JSON-encode a query answer (sets tagged, scalars as-is)."""
    if isinstance(value, (set, frozenset)):
        return {"__set__": list(value)}
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict) and set(value) == {"__set__"}:
        return set(value["__set__"])
    return value
