"""Tests for the source-partitioned (sharded) GSS deployment."""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.core.partitioned import PartitionedGSS
from repro.queries.primitives import EDGE_NOT_FOUND, consume_stream
from repro.queries.reachability import is_reachable


def make_partitioned(partitions: int = 4, width: int = 24) -> PartitionedGSS:
    config = GSSConfig(matrix_width=width, sequence_length=4, candidate_buckets=4)
    return PartitionedGSS(config, partitions=partitions)


class TestConstruction:
    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            PartitionedGSS(GSSConfig(matrix_width=8), partitions=0)

    def test_for_total_capacity_sizes_shards(self):
        sharded = PartitionedGSS.for_total_capacity(4000, partitions=4)
        total_rooms = sum(
            shard.config.matrix_width ** 2 * shard.config.rooms for shard in sharded.shards
        )
        assert total_rooms >= 4000
        assert sharded.partitions == 4

    def test_for_total_capacity_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            PartitionedGSS.for_total_capacity(0)


class TestRoutingAndQueries:
    def test_update_routes_to_single_shard(self):
        sharded = make_partitioned()
        sharded.update("a", "b", 2.0)
        populated = [shard for shard in sharded.shards if shard.update_count > 0]
        assert len(populated) == 1

    def test_routing_is_deterministic(self):
        sharded = make_partitioned()
        assert sharded.shard_of("node-1") == sharded.shard_of("node-1")

    def test_edge_query_matches_monolithic(self, small_stream):
        sharded = make_partitioned(partitions=3, width=40)
        consume_stream(sharded, small_stream)
        truth = small_stream.aggregate_weights()
        for (source, destination), weight in list(truth.items())[:100]:
            assert sharded.edge_query(source, destination) >= weight

    def test_successor_query_covers_truth(self, small_stream):
        sharded = make_partitioned(partitions=3, width=40)
        consume_stream(sharded, small_stream)
        successors = small_stream.successors()
        for node in list(successors)[:50]:
            assert successors[node] <= sharded.successor_query(node)

    def test_precursor_query_fans_out(self, small_stream):
        sharded = make_partitioned(partitions=3, width=40)
        consume_stream(sharded, small_stream)
        precursors = small_stream.precursors()
        for node in list(precursors)[:50]:
            assert precursors[node] <= sharded.precursor_query(node)

    def test_missing_edge(self):
        sharded = make_partitioned()
        sharded.update("a", "b")
        assert sharded.edge_query("nope", "nothing") is None

    def test_node_weights(self):
        sharded = make_partitioned()
        sharded.update("a", "b", 2.0)
        sharded.update("a", "c", 3.0)
        sharded.update("z", "a", 7.0)
        assert sharded.node_out_weight("a") == pytest.approx(5.0)
        assert sharded.node_in_weight("a") == pytest.approx(7.0)

    def test_compound_queries_run_on_partitioned(self):
        sharded = make_partitioned()
        sharded.update("a", "b")
        sharded.update("b", "c")
        assert is_reachable(sharded, "a", "c")


class TestLoadAndMerge:
    def test_shard_loads_and_imbalance(self, small_stream):
        sharded = make_partitioned(partitions=4, width=40)
        consume_stream(sharded, small_stream)
        loads = sharded.shard_loads()
        assert len(loads) == 4
        assert sum(loads) == sharded.matrix_edge_count + sharded.buffer_edge_count
        assert sharded.load_imbalance() >= 1.0

    def test_load_imbalance_on_empty_is_one(self):
        assert make_partitioned().load_imbalance() == 1.0

    def test_update_count_accumulates(self):
        sharded = make_partitioned()
        for index in range(10):
            sharded.update(f"s{index}", f"d{index}")
        assert sharded.update_count == 10

    def test_memory_is_sum_of_shards(self):
        sharded = make_partitioned(partitions=2)
        expected = sum(shard.memory_bytes() for shard in sharded.shards)
        assert sharded.memory_bytes() == expected

    def test_merge_into_single_preserves_edge_weights(self, small_stream):
        sharded = make_partitioned(partitions=3, width=40)
        consume_stream(sharded, small_stream)
        merged = sharded.merge_into_single()
        assert isinstance(merged, GSS)
        truth = small_stream.aggregate_weights()
        for (source, destination), weight in list(truth.items())[:100]:
            assert merged.edge_query(source, destination) >= weight

    def test_merge_rejects_incompatible_config(self):
        sharded = make_partitioned()
        sharded.update("a", "b")
        other = GSSConfig(matrix_width=99, sequence_length=4, candidate_buckets=4)
        with pytest.raises(ValueError):
            sharded.merge_into_single(other)

    def test_buffer_percentage_bounds(self, small_stream):
        sharded = make_partitioned(partitions=2, width=40)
        consume_stream(sharded, small_stream)
        assert 0.0 <= sharded.buffer_percentage <= 1.0


class TestZeroUpdateShardStats:
    """Stats must be well-defined when some (or all) shards saw no updates."""

    def test_all_stats_safe_on_a_fresh_deployment(self):
        sharded = make_partitioned(partitions=4)
        assert sharded.load_imbalance() == 1.0
        assert sharded.buffer_percentage == 0.0
        assert sharded.shard_buffer_percentages() == [0.0, 0.0, 0.0, 0.0]
        stats = sharded.shard_ingest_stats()
        assert stats.items_routed == [0, 0, 0, 0]
        assert stats.routing_imbalance == 1.0
        assert stats.total_items == 0

    def test_single_routed_shard_leaves_others_at_zero(self):
        sharded = make_partitioned(partitions=4)
        sharded.update("only-source", "a")
        sharded.update("only-source", "b")
        stats = sharded.shard_ingest_stats()
        assert stats.total_items == 2
        assert sorted(stats.items_routed) == [0, 0, 0, 2]
        # The zero-update shards must not break any derived ratio.
        assert stats.routing_imbalance == pytest.approx(4.0)
        assert sharded.load_imbalance() >= 1.0
        percentages = sharded.shard_buffer_percentages()
        assert len(percentages) == 4
        assert all(0.0 <= pct <= 1.0 for pct in percentages)

    def test_items_routed_tracks_both_update_paths(self, small_stream):
        sharded = make_partitioned(partitions=3, width=40)
        half = len(small_stream) // 2
        for edge in small_stream[:half]:
            sharded.update(edge.source, edge.destination, edge.weight)
        sharded.update_many(
            (edge.source, edge.destination, edge.weight)
            for edge in small_stream[half:]
        )
        stats = sharded.shard_ingest_stats()
        assert stats.total_items == len(small_stream) == sharded.update_count
        assert stats.queue_depth_high_water == 0  # synchronous deployment


class TestMemoryParity:
    def test_matrix_memory_bytes_totals_the_deployment(self):
        sharded = make_partitioned(partitions=3)
        assert sharded.matrix_memory_bytes() == sum(
            shard.config.matrix_memory_bytes() for shard in sharded.shards
        )
        # The per-shard config accounts one shard only; the deployment-level
        # accessor is what equal-memory comparisons must use.
        assert sharded.matrix_memory_bytes() == 3 * sharded.config.matrix_memory_bytes()

    def test_factory_budget_lands_near_the_requested_bytes(self):
        from repro.api import build

        budget = 64 * 1024
        sharded = build("partitioned-gss", memory_bytes=budget, params={"partitions": 4})
        assert budget / 2 <= sharded.memory_bytes() <= budget
        assert budget / 2 <= sharded.matrix_memory_bytes() <= budget

    def test_memory_bytes_include_node_index_parity_with_gss(self):
        sharded = make_partitioned(partitions=2)
        sharded.update("a", "b")
        with_index = sharded.memory_bytes(include_node_index=True)
        without = sharded.memory_bytes()
        assert with_index >= without
        assert without == sum(shard.memory_bytes() for shard in sharded.shards)
