"""Tests for :mod:`repro.serve`: the asyncio network front end.

The load-bearing laws:

* **wire fidelity** — every value survives the frame protocol bit-for-bit
  (JSON shortest-repr floats round-trip IEEE doubles; sets keep their type);
* **served equivalence** — a single ingest feed through the server produces
  a summary answering every query identically to an in-process
  ``ShardedSummary`` fed the same stream directly;
* **lossless backpressure** — busy replies slow a client down but never
  lose, reorder, or double-apply a frame;
* **snapshot consistency** — a checkpoint racing concurrent ingest captures
  a pre- or post-barrier state, never a partial mix across shards.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.api import SketchSpec, build, from_dict
from repro.hashing.vectorized import NUMPY_AVAILABLE
from repro.serve import (
    ServeClient,
    ServeClientError,
    ServeConfig,
    fetch_http_metrics,
    serve_in_thread,
)
from repro.serve import protocol
from repro.serve.loadgen import (
    LoadGenConfig,
    partition_by_shard,
    run_load_test,
    synthetic_stream,
)
from repro.streaming.batch import HashedBatch, HashSpec

#: Small inner shards so cluster spin-up stays cheap.
SHARD_PARAMS = dict(matrix_width=24, sequence_length=4, candidate_buckets=4)


def make_spec(workers: int = 2) -> SketchSpec:
    return SketchSpec(
        "sharded-gss", params={"workers": workers, **SHARD_PARAMS}
    )


@pytest.fixture(scope="module")
def shared_server():
    """One default-config server shared by the read-mostly tests."""
    cluster = build(make_spec())
    handle = serve_in_thread(cluster, ServeConfig(close_summary=False))
    yield handle
    handle.stop()
    cluster.close()


@pytest.fixture()
def client(shared_server):
    with ServeClient(shared_server.host, shared_server.port) as connection:
        yield connection


class TestProtocolFraming:
    def test_frame_round_trip(self):
        frame = protocol.pack_frame(protocol.FRAME_JSON, b'{"op":"hello"}')
        buffer = bytearray(frame)

        def read_exact(count):
            data = bytes(buffer[:count])
            del buffer[:count]
            return data

        kind, payload = protocol.read_frame(read_exact)
        assert kind == protocol.FRAME_JSON
        assert payload == b'{"op":"hello"}'
        assert not buffer

    def test_empty_payload(self):
        frame = protocol.pack_frame(protocol.FRAME_JSON, b"")
        view = memoryview(frame)
        state = {"cursor": 0}

        def read_exact(count):
            start = state["cursor"]
            state["cursor"] += count
            return bytes(view[start : start + count])

        assert protocol.read_frame(read_exact) == (protocol.FRAME_JSON, b"")

    def test_oversized_payload_refused_on_send(self):
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.pack_frame(
                protocol.FRAME_JSON, b"x" * (protocol.MAX_FRAME_BYTES + 1)
            )

    def test_oversized_length_prefix_refused_on_read(self):
        header = struct.pack("!BI", protocol.FRAME_JSON, protocol.MAX_FRAME_BYTES + 1)

        def read_exact(count):
            return header[:count]

        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.read_frame(read_exact)

    def test_malformed_json_payload(self):
        with pytest.raises(protocol.ProtocolError, match="malformed"):
            protocol.decode_json_payload(b"{nope")
        with pytest.raises(protocol.ProtocolError, match="objects"):
            protocol.decode_json_payload(b"[1, 2]")

    def test_set_values_keep_their_type(self):
        encoded = protocol.encode_value({"b", "a"})
        assert set(encoded["__set__"]) == {"a", "b"}
        assert protocol.decode_value(encoded) == {"a", "b"}
        assert protocol.decode_value(3.5) == 3.5
        assert protocol.decode_value(None) is None
        # A genuine dict with other keys is not mistaken for a tagged set.
        assert protocol.decode_value({"__set__": [1], "x": 2}) == {
            "__set__": [1],
            "x": 2,
        }

    def test_hash_spec_wire_round_trip(self):
        spec = HashSpec(seed=3, hash_range=1 << 12, routing_seed=97)
        assert protocol.spec_from_wire(protocol.spec_to_wire(spec)) == spec
        assert protocol.spec_to_wire(None) is None
        assert protocol.spec_from_wire(None) is None


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="binary frames need NumPy")
class TestBinaryIngestFrames:
    SPEC = HashSpec(seed=1, hash_range=1 << 12, routing_seed=97)

    def batch(self, count: int = 5) -> HashedBatch:
        items = [(f"s{i}", f"d{i}", float(i + 1)) for i in range(count)]
        return HashedBatch.from_items(items, self.SPEC)

    def test_round_trip_preserves_hashes_and_routes(self):
        batch = self.batch()
        frame = protocol.encode_ingest_frame(batch)
        state = {"cursor": 0}

        def read_exact(count):
            start = state["cursor"]
            state["cursor"] += count
            return frame[start : start + count]

        kind, payload = protocol.read_frame(read_exact)
        assert kind == protocol.FRAME_HBATCH
        decoded = protocol.decode_ingest_payload(payload, self.SPEC)
        assert len(decoded) == len(batch)
        assert decoded.source_hash_list() == batch.source_hash_list()
        assert decoded.destination_hash_list() == batch.destination_hash_list()
        assert decoded.weight_list() == batch.weight_list()
        assert decoded.route_hashes is not None
        assert list(decoded.route_hashes) == list(batch.route_hashes)

    def test_route_count_mismatch_rejected(self):
        import numpy as np

        from repro.cluster.transport import encode_hashed_batch

        blob = encode_hashed_batch(self.batch(2))
        payload = (
            struct.pack("=Q", 3) + np.zeros(3, dtype=np.uint64).tobytes() + blob
        )
        with pytest.raises(protocol.ProtocolError, match="route column"):
            protocol.decode_ingest_payload(payload, self.SPEC)

    def test_batch_without_routes_travels(self):
        spec = HashSpec(seed=1, hash_range=1 << 12)  # no routing seed
        batch = HashedBatch.from_items([("a", "b", 1.0)], spec)
        frame = protocol.encode_ingest_frame(batch)
        payload = frame[protocol.HEADER_SIZE :]
        decoded = protocol.decode_ingest_payload(payload, spec)
        assert decoded.route_hashes is None
        assert decoded.items() == [("a", "b", 1.0)]


class TestServeBasics:
    def test_hello_negotiation(self, client):
        assert client.server_info["protocol"] == protocol.PROTOCOL_VERSION
        assert client.workers == 2
        assert client.credits >= 1
        assert client.retry_after > 0
        assert client.hash_spec is not None
        assert client.hash_spec.routing_seed is not None
        assert client.binary_ingest == NUMPY_AVAILABLE

    def test_read_your_writes_without_flush(self, client):
        client.ingest([("ryw-a", "ryw-b", 2.5)])
        assert client.edge_query("ryw-a", "ryw-b") == 2.5
        assert client.successor_query("ryw-a") == {"ryw-b"}
        assert client.precursor_query("ryw-b") == {"ryw-a"}

    def test_query_answer_types(self, client):
        client.ingest([("typ-a", "typ-b", 1.0), ("typ-a", "typ-c", 2.0)])
        client.flush()
        successors = client.successor_query("typ-a")
        assert isinstance(successors, set)
        assert successors == {"typ-b", "typ-c"}
        assert client.edge_query("typ-missing", "typ-nope") is None
        assert client.node_out_weight("typ-a") == 3.0
        assert client.node_in_weight("typ-b") == 1.0
        assert isinstance(client.memory_bytes(), int)

    def test_unknown_op_is_an_error_reply(self, client):
        with pytest.raises(ServeClientError, match="unknown op"):
            client._round_trip({"op": "frobnicate"})

    def test_only_allowed_methods_are_callable(self, client):
        with pytest.raises(ServeClientError, match="method"):
            client._round_trip({"op": "call", "method": "to_dict", "args": []})
        with pytest.raises(ServeClientError, match="method"):
            client._round_trip({"op": "call", "method": "__class__", "args": []})

    def test_metrics_count_ingest(self, client):
        before = client.metrics()
        client.ingest([(f"met-{i}", "met-x", 1.0) for i in range(37)])
        client.drain()
        after = client.metrics()
        assert after["ingest_items"] - before["ingest_items"] == 37
        assert after["update_count"] >= 37
        assert after["inflight_batches"] == 0
        assert list(after["shards"]["items_routed"])
        assert after["connections_open"] >= 1

    def test_http_metrics_on_same_port(self, shared_server, client):
        client.ingest([("http-a", "http-b", 1.0)])
        client.drain()
        document = fetch_http_metrics(shared_server.host, shared_server.port)
        assert document["server"] == "repro-serve"
        assert document["ingest_items"] >= 1
        assert document["credits_per_connection"] >= 1
        assert "shards" in document

    def test_http_healthz_and_404(self, shared_server):
        def http_get(path):
            with socket.create_connection(
                (shared_server.host, shared_server.port), timeout=5
            ) as sock:
                sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode("ascii"))
                chunks = []
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
            return b"".join(chunks)

        assert b" 200 " in http_get("/healthz").split(b"\r\n", 1)[0]
        assert b" 404 " in http_get("/nope").split(b"\r\n", 1)[0]

    def test_handle_metrics_document(self, shared_server):
        document = shared_server.metrics_document()
        assert document["server"] == "repro-serve"


def assert_equivalent(client: ServeClient, reference, stream) -> None:
    """Every query answer bit-identical between the served and direct paths."""
    nodes = sorted({edge[0] for edge in stream})[:40]
    for source, destination, _ in stream[:150]:
        assert client.edge_query(source, destination) == reference.edge_query(
            source, destination
        )
    for node in nodes:
        assert client.successor_query(node) == reference.successor_query(node)
        assert client.precursor_query(node) == reference.precursor_query(node)
        assert client.node_out_weight(node) == reference.node_out_weight(node)
        assert client.node_in_weight(node) == reference.node_in_weight(node)


class TestServedEquivalence:
    """One feed through the server == the same stream fed in process."""

    def run_equivalence(self, force_json: bool) -> None:
        stream = synthetic_stream(2500, nodes=250, seed=13)
        cluster = build(make_spec())
        reference = build(make_spec())
        handle = serve_in_thread(cluster, ServeConfig(close_summary=False))
        try:
            with ServeClient(handle.host, handle.port, batch_size=256) as feed:
                if force_json:
                    feed.binary_ingest = False
                feed.ingest(stream)
                feed.flush()
                reference.update_many(stream)
                reference.flush()
                assert_equivalent(feed, reference, stream)
        finally:
            handle.stop()
            cluster.close()
            reference.close()

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="binary path needs NumPy")
    def test_binary_ingest_equivalent(self):
        self.run_equivalence(force_json=False)

    def test_json_ingest_equivalent(self):
        self.run_equivalence(force_json=True)


class TestBackpressure:
    def test_busy_replies_lose_nothing(self):
        stream = synthetic_stream(6000, nodes=200, seed=5)
        cluster = build(make_spec())
        reference = build(make_spec())
        handle = serve_in_thread(
            cluster,
            # More per-connection credits than the global admission cap: the
            # client's window alone cannot avoid the bounce, so the busy
            # machinery must carry the load.
            ServeConfig(
                close_summary=False, credits=4, max_inflight=2, retry_after=0.002
            ),
        )
        try:
            with ServeClient(
                handle.host, handle.port, batch_size=32, max_busy_retries=1000
            ) as feed:
                feed.ingest(stream)
                feed.drain()
                metrics = feed.metrics()
                assert metrics["busy_replies"] > 0, "tiny window must bounce"
                assert feed.busy_retries > 0
                assert metrics["ingest_items"] == len(stream)
                assert metrics["inflight_batches"] == 0
                feed.flush()
                reference.update_many(stream)
                reference.flush()
                # Bounced-and-resent frames arrive in their original order:
                # the summary is bit-identical to the uncontended feed.
                assert_equivalent(feed, reference, stream)
        finally:
            handle.stop()
            cluster.close()
            reference.close()

    def test_busy_reply_carries_retry_hint(self):
        cluster = build(make_spec())
        handle = serve_in_thread(
            cluster,
            ServeConfig(
                close_summary=False, credits=1, max_inflight=1, retry_after=0.123
            ),
        )
        try:
            with ServeClient(handle.host, handle.port) as feed:
                assert feed.server_info["retry_after"] == 0.123
                assert feed.credits == 1
        finally:
            handle.stop()
            cluster.close()


class TestSnapshotConsistency:
    """Checkpoints racing ingest see pre- or post-barrier state, never a mix."""

    @staticmethod
    def paired_keys(cluster):
        """One key homed on each shard (the cross-shard atomicity probes)."""
        key0 = next(f"p{i}" for i in range(1000) if cluster.shard_of(f"p{i}") == 0)
        key1 = next(f"p{i}" for i in range(1000) if cluster.shard_of(f"p{i}") == 1)
        return key0, key1

    def test_cluster_barrier_never_splits_a_batch(self):
        cluster = build(make_spec())
        key0, key1 = self.paired_keys(cluster)
        stop = threading.Event()
        errors = []

        def writer():
            round_number = 0
            while not stop.is_set() and round_number < 400:
                # One locked update_many: both shards move together.
                cluster.update_many(
                    [(key0, f"t{round_number}", 1.0), (key1, f"t{round_number}", 1.0)]
                )
                round_number += 1

        def checkpointer():
            try:
                for _ in range(25):
                    shard0, shard1 = (
                        from_dict(doc) for doc in cluster.shard_snapshots()
                    )
                    weight0 = shard0.node_out_weight(key0)
                    weight1 = shard1.node_out_weight(key1)
                    assert weight0 == weight1, (
                        f"partial checkpoint: shard0 saw {weight0}, "
                        f"shard1 saw {weight1}"
                    )
            except Exception as error:  # noqa: BLE001
                errors.append(error)
            finally:
                stop.set()

        threads = [
            threading.Thread(target=writer, daemon=True),
            threading.Thread(target=checkpointer, daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        cluster.close()
        assert not errors, errors[0]

    def test_served_checkpoint_races_ingest(self, tmp_path):
        from repro.cluster import load_checkpoint

        cluster = build(make_spec())
        key0, key1 = self.paired_keys(cluster)
        handle = serve_in_thread(
            cluster,
            ServeConfig(close_summary=False, checkpoint_dir=str(tmp_path)),
        )
        errors = []
        done = threading.Event()

        def feed():
            try:
                with ServeClient(handle.host, handle.port, batch_size=2) as writer:
                    for round_number in range(300):
                        writer.ingest_batch(
                            [
                                (key0, f"t{round_number}", 1.0),
                                (key1, f"t{round_number}", 1.0),
                            ]
                        )
                    writer.drain()
            except Exception as error:  # noqa: BLE001
                errors.append(error)
            finally:
                done.set()

        def checkpoints():
            try:
                with ServeClient(handle.host, handle.port) as control:
                    while not done.is_set():
                        control.checkpoint()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=feed, daemon=True),
            threading.Thread(target=checkpoints, daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        try:
            assert not errors, errors[0]
            restored = load_checkpoint(tmp_path)
            try:
                # Whatever moment the final checkpoint captured, both halves
                # of every paired batch are in or out together.
                assert restored.node_out_weight(key0) == restored.node_out_weight(key1)
            finally:
                restored.close()
        finally:
            handle.stop()
            cluster.close()


class TestGracefulShutdown:
    def test_stop_drains_checkpoints_and_closes(self, tmp_path):
        from repro.cluster import load_checkpoint

        cluster = build(make_spec())
        handle = serve_in_thread(
            cluster, ServeConfig(checkpoint_dir=str(tmp_path), close_summary=True)
        )
        with ServeClient(handle.host, handle.port) as feed:
            feed.ingest([(f"gs-{i}", "gs-x", 1.0) for i in range(100)])
            feed.drain()
        handle.stop()
        assert cluster.closed
        assert (tmp_path / "manifest.json").exists()
        restored = load_checkpoint(tmp_path)
        try:
            assert restored.update_count == 100
            assert restored.edge_query("gs-1", "gs-x") == 1.0
        finally:
            restored.close()

    def test_stopped_server_refuses_connections(self):
        cluster = build(make_spec())
        handle = serve_in_thread(cluster, ServeConfig(close_summary=False))
        host, port = handle.host, handle.port
        handle.stop()
        cluster.close()
        with pytest.raises((ConnectionError, OSError, ServeClientError)):
            ServeClient(host, port, timeout=2.0)

    def test_handle_context_manager(self):
        cluster = build(make_spec())
        with serve_in_thread(cluster, ServeConfig(close_summary=True)) as handle:
            with ServeClient(handle.host, handle.port) as feed:
                feed.update("ctx-a", "ctx-b", 1.0)
        assert cluster.closed


class TestLoadgen:
    def test_synthetic_stream_deterministic(self):
        assert synthetic_stream(100, 50, seed=3) == synthetic_stream(100, 50, seed=3)
        assert synthetic_stream(100, 50, seed=3) != synthetic_stream(100, 50, seed=4)

    def test_partition_by_shard_preserves_order(self):
        stream = synthetic_stream(500, 60, seed=9)
        parts = partition_by_shard(stream, routing_seed=97, workers=3)
        assert sum(len(part) for part in parts) == len(stream)
        # Per-shard relative order is original stream order.
        for part in parts:
            positions = [stream.index(item) for item in part[:10]]
            assert positions == sorted(positions)

    def test_run_load_test_verify_mode(self):
        cluster = build(make_spec())
        reference = build(make_spec())
        handle = serve_in_thread(cluster, ServeConfig(close_summary=False))
        try:
            report = run_load_test(
                LoadGenConfig(
                    host=handle.host,
                    port=handle.port,
                    total_items=3000,
                    nodes=200,
                    query_clients=2,
                    batch_size=128,
                    verify=True,
                    verify_sample=120,
                ),
                reference=reference,
            )
        finally:
            handle.stop()
            cluster.close()
            reference.close()
        assert report["mode"] == "verify"
        assert report["clients"]["ingest"] == 2  # one per shard
        assert report["items_sent"] == 3000
        assert report["errored_frames"] == 0
        assert report["verify"]["ok"], report["verify"]["mismatch_examples"]
        assert report["query"]["count"] > 0
        assert report["query"]["p50_ms"] is not None

    def test_verify_mode_requires_reference(self):
        with pytest.raises(ValueError, match="reference"):
            run_load_test(LoadGenConfig(verify=True))

    def test_verify_mode_rejects_duration(self):
        with pytest.raises(ValueError, match="duration"):
            run_load_test(
                LoadGenConfig(verify=True, duration=1.0), reference=object()
            )
