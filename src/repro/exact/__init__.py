"""Exact streaming-graph stores.

These provide ground truth for every experiment and reproduce the paper's
baselines that are not sketches: the adjacency list (Table I update-speed
baseline) and the adjacency matrix (the representation TCM builds its sketch
on, included here in exact form for small graphs and for testing).
"""

from repro.exact.adjacency_list import AdjacencyListGraph
from repro.exact.adjacency_matrix import AdjacencyMatrixGraph

__all__ = ["AdjacencyListGraph", "AdjacencyMatrixGraph"]
