"""Path-style compound queries built on the primitives.

The paper argues that once the three primitives are available "almost all
algorithms for graphs can be implemented".  This module adds the path-shaped
ones that the use cases in the introduction rely on (news spreading paths,
message routes in data centers):

* ``k_hop_successors`` / ``k_hop_precursors`` — the nodes within ``k`` hops;
* ``shortest_path_length`` — BFS hop distance between two nodes;
* ``shortest_path`` — one concrete hop-minimal path (useful for tracing);
* ``weakly_connected_components`` — components of the undirected view.

All of them run unchanged on exact stores and on sketches; on sketches the
results can only err on the side of extra nodes/edges (false positives), never
missing a true path.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.queries.primitives import GraphQueryInterface


def k_hop_successors(
    store: GraphQueryInterface, node: Hashable, hops: int, max_nodes: Optional[int] = None
) -> Set[Hashable]:
    """Nodes reachable from ``node`` within ``hops`` hops (excluding itself)."""
    if hops < 0:
        raise ValueError("hops must be non-negative")
    frontier = {node}
    seen = {node}
    for _ in range(hops):
        next_frontier: Set[Hashable] = set()
        for current in frontier:
            for successor in store.successor_query(current):
                if successor not in seen:
                    seen.add(successor)
                    next_frontier.add(successor)
                    if max_nodes is not None and len(seen) > max_nodes:
                        return seen - {node}
        if not next_frontier:
            break
        frontier = next_frontier
    return seen - {node}


def k_hop_precursors(
    store: GraphQueryInterface, node: Hashable, hops: int, max_nodes: Optional[int] = None
) -> Set[Hashable]:
    """Nodes that can reach ``node`` within ``hops`` hops (excluding itself)."""
    if hops < 0:
        raise ValueError("hops must be non-negative")
    frontier = {node}
    seen = {node}
    for _ in range(hops):
        next_frontier: Set[Hashable] = set()
        for current in frontier:
            for precursor in store.precursor_query(current):
                if precursor not in seen:
                    seen.add(precursor)
                    next_frontier.add(precursor)
                    if max_nodes is not None and len(seen) > max_nodes:
                        return seen - {node}
        if not next_frontier:
            break
        frontier = next_frontier
    return seen - {node}


def shortest_path_length(
    store: GraphQueryInterface,
    source: Hashable,
    destination: Hashable,
    max_nodes: Optional[int] = None,
) -> Optional[int]:
    """Hop count of the shortest directed path, or ``None`` when unreachable."""
    if source == destination:
        return 0
    distance = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for successor in store.successor_query(current):
            if successor in distance:
                continue
            distance[successor] = distance[current] + 1
            if successor == destination:
                return distance[successor]
            if max_nodes is not None and len(distance) >= max_nodes:
                return None
            queue.append(successor)
    return None


def shortest_path(
    store: GraphQueryInterface,
    source: Hashable,
    destination: Hashable,
    max_nodes: Optional[int] = None,
) -> Optional[List[Hashable]]:
    """One hop-minimal path from ``source`` to ``destination`` (inclusive)."""
    if source == destination:
        return [source]
    parent: Dict[Hashable, Hashable] = {source: source}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for successor in store.successor_query(current):
            if successor in parent:
                continue
            parent[successor] = current
            if successor == destination:
                path = [successor]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            if max_nodes is not None and len(parent) >= max_nodes:
                return None
            queue.append(successor)
    return None


def weakly_connected_components(
    store: GraphQueryInterface, nodes: Iterable[Hashable]
) -> List[Set[Hashable]]:
    """Connected components of the undirected view, restricted to ``nodes``."""
    node_set = set(nodes)
    unvisited = set(node_set)
    components: List[Set[Hashable]] = []
    while unvisited:
        seed = next(iter(unvisited))
        component = {seed}
        queue = deque([seed])
        unvisited.discard(seed)
        while queue:
            current = queue.popleft()
            neighbors = store.successor_query(current) | store.precursor_query(current)
            for neighbor in neighbors:
                if neighbor in unvisited:
                    unvisited.discard(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components
