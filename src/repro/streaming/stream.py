"""The graph stream container and its summary statistics."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.streaming.edge import StreamEdge


@dataclass
class StreamStatistics:
    """Aggregate facts about a graph stream, used to size sketches.

    ``distinct_edges`` is ``|E|`` of the streaming graph (distinct source,
    destination pairs), ``node_count`` is ``|V|``, and ``item_count`` is the
    raw number of stream items (duplicates included).
    """

    item_count: int = 0
    distinct_edges: int = 0
    node_count: int = 0
    total_weight: float = 0.0
    max_out_degree: int = 0
    max_in_degree: int = 0

    @property
    def average_multiplicity(self) -> float:
        """Average number of stream items per distinct edge."""
        if self.distinct_edges == 0:
            return 0.0
        return self.item_count / self.distinct_edges


class GraphStream:
    """An in-memory graph stream: an ordered sequence of :class:`StreamEdge`.

    The class behaves like a sequence (iteration, ``len``, indexing) and adds
    stream-level conveniences: statistics, ground-truth aggregation, windowed
    slicing and node/edge enumeration.  Experiments feed a ``GraphStream`` to
    both the sketches under test and the exact store used as reference.
    """

    def __init__(self, edges: Optional[Iterable[StreamEdge]] = None, name: str = "") -> None:
        self.name = name
        self._edges: List[StreamEdge] = list(edges) if edges is not None else []

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[StreamEdge]:
        return iter(self._edges)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return GraphStream(self._edges[index], name=self.name)
        return self._edges[index]

    def append(self, edge: StreamEdge) -> None:
        """Add one item to the end of the stream."""
        self._edges.append(edge)

    def extend(self, edges: Iterable[StreamEdge]) -> None:
        """Add several items to the end of the stream."""
        self._edges.extend(edges)

    # -- derived views -----------------------------------------------------

    def statistics(self) -> StreamStatistics:
        """Compute |E|, |V|, item count, total weight and degree maxima."""
        distinct: set = set()
        nodes: set = set()
        out_degree: Counter = Counter()
        in_degree: Counter = Counter()
        total_weight = 0.0
        for edge in self._edges:
            key = edge.key
            if key not in distinct:
                distinct.add(key)
                out_degree[edge.source] += 1
                in_degree[edge.destination] += 1
            nodes.add(edge.source)
            nodes.add(edge.destination)
            total_weight += edge.weight
        return StreamStatistics(
            item_count=len(self._edges),
            distinct_edges=len(distinct),
            node_count=len(nodes),
            total_weight=total_weight,
            max_out_degree=max(out_degree.values(), default=0),
            max_in_degree=max(in_degree.values(), default=0),
        )

    def nodes(self) -> List[Hashable]:
        """Return the distinct node identifiers in first-seen order."""
        seen: Dict[Hashable, None] = {}
        for edge in self._edges:
            seen.setdefault(edge.source, None)
            seen.setdefault(edge.destination, None)
        return list(seen)

    def distinct_edge_keys(self) -> List[Tuple[Hashable, Hashable]]:
        """Return the distinct (source, destination) pairs in first-seen order."""
        seen: Dict[Tuple[Hashable, Hashable], None] = {}
        for edge in self._edges:
            seen.setdefault(edge.key, None)
        return list(seen)

    def aggregate_weights(self) -> Dict[Tuple[Hashable, Hashable], float]:
        """Ground-truth streaming-graph weights: SUM of item weights per edge."""
        weights: Dict[Tuple[Hashable, Hashable], float] = defaultdict(float)
        for edge in self._edges:
            weights[edge.key] += edge.weight
        return dict(weights)

    def successors(self) -> Dict[Hashable, set]:
        """Ground-truth 1-hop successor sets of the streaming graph."""
        result: Dict[Hashable, set] = defaultdict(set)
        for edge in self._edges:
            result[edge.source].add(edge.destination)
        return dict(result)

    def precursors(self) -> Dict[Hashable, set]:
        """Ground-truth 1-hop precursor sets of the streaming graph."""
        result: Dict[Hashable, set] = defaultdict(set)
        for edge in self._edges:
            result[edge.destination].add(edge.source)
        return dict(result)

    def node_out_weights(self) -> Dict[Hashable, float]:
        """Ground-truth node-query answers: total out-going weight per node."""
        result: Dict[Hashable, float] = defaultdict(float)
        for edge in self._edges:
            result[edge.source] += edge.weight
        return dict(result)

    def sorted_by_timestamp(self) -> "GraphStream":
        """Return a copy of this stream ordered by item timestamp."""
        ordered = sorted(self._edges, key=lambda edge: edge.timestamp)
        return GraphStream(ordered, name=self.name)

    def unique_edges(self) -> "GraphStream":
        """Return a stream keeping only the first occurrence of every edge.

        The paper's triangle-counting experiment de-duplicates edges because
        TRIEST does not support multigraphs.
        """
        seen: set = set()
        deduplicated: List[StreamEdge] = []
        for edge in self._edges:
            if edge.key not in seen:
                seen.add(edge.key)
                deduplicated.append(edge)
        return GraphStream(deduplicated, name=self.name)

    def window(self, start: int, size: int) -> "GraphStream":
        """Return the sub-stream of ``size`` items beginning at index ``start``."""
        if start < 0 or size < 0:
            raise ValueError("start and size must be non-negative")
        return GraphStream(self._edges[start:start + size], name=self.name)

    # -- batch ingestion ---------------------------------------------------

    def iter_batches(self, batch_size: int) -> Iterator[List[StreamEdge]]:
        """Yield the stream as consecutive batches of ``batch_size`` items.

        The last batch may be shorter; order within and across batches is the
        stream order, so batched ingestion is equivalent to item-at-a-time
        ingestion for every store in this package.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        for start in range(0, len(self._edges), batch_size):
            yield self._edges[start:start + batch_size]

    def ingest_into(self, store, batch_size: int = 1024):
        """Feed the whole stream into ``store`` and return the store.

        Uses the store's batched ``update_many`` API when it has one (every
        sketch in :mod:`repro.core` does), falling back to item-at-a-time
        ``update`` otherwise — so exact baselines and third-party stores work
        unchanged.
        """
        from repro.queries.primitives import consume_stream

        return consume_stream(store, self._edges, batch_size=batch_size)


def stream_from_pairs(
    pairs: Sequence[Tuple[Hashable, Hashable]],
    weights: Optional[Sequence[float]] = None,
    name: str = "",
) -> GraphStream:
    """Build a stream from bare (source, destination) pairs.

    Timestamps are the item positions; weights default to 1.
    """
    edges = []
    for position, (source, destination) in enumerate(pairs):
        weight = 1.0 if weights is None else float(weights[position])
        edges.append(
            StreamEdge(source=source, destination=destination, weight=weight, timestamp=float(position))
        )
    return GraphStream(edges, name=name)
