"""Tests for the ``repro.api`` registry, factory and snapshot dispatch."""

from __future__ import annotations

import pytest

from repro.api import (
    Capabilities,
    SketchInfo,
    SketchSpec,
    build,
    from_dict,
    list_sketches,
    register_sketch,
    sketch_info,
)
from repro.api.registry import _REGISTRY, reference_budget_bytes


class TestRegistryListing:
    def test_every_expected_sketch_is_registered(self):
        names = list_sketches()
        for expected in (
            "gss", "gss-basic", "undirected-gss", "gss-ensemble", "windowed-gss",
            "partitioned-gss", "tcm", "gmatrix", "cm", "cu", "gsketch",
            "triest-base", "triest-impr",
        ):
            assert expected in names

    def test_sketch_info_reports_capabilities_and_params(self):
        info = sketch_info("gss")
        assert info.capabilities.serializable
        assert "fingerprint_bits" in info.param_names

    def test_unknown_sketch_names_known_ones(self):
        with pytest.raises(KeyError, match="registered:.*gss"):
            sketch_info("nope")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_sketch(sketch_info("gss"))

    def test_custom_registration_round_trip(self):
        info = SketchInfo(
            name="test-dummy",
            description="a test-only sketch",
            capabilities=Capabilities(),
            builder=lambda spec: build("gss", memory_bytes=1024),
        )
        register_sketch(info)
        try:
            assert "test-dummy" in list_sketches()
            summary = build("test-dummy", memory_bytes=1024)
            assert summary.memory_bytes() > 0
        finally:
            _REGISTRY.pop("test-dummy")


class TestFactoryTranslation:
    def test_build_accepts_name_with_kwargs(self):
        summary = build("tcm", memory_bytes=65536, params={"depth": 2})
        assert summary.depth == 2
        assert summary.memory_bytes() <= 65536

    def test_unknown_param_lists_accepted_ones(self):
        with pytest.raises(ValueError, match="accepted:.*fingerprint_bits"):
            build(SketchSpec("gss", memory_bytes=4096, params={"bogus": 1}))

    def test_missing_sizing_raises(self):
        with pytest.raises(ValueError, match="memory_bytes, expected_edges"):
            build(SketchSpec("gss"))

    def test_windowed_requires_window_span(self):
        with pytest.raises(ValueError, match="window_span"):
            build(SketchSpec("windowed-gss", memory_bytes=4096))

    def test_memory_budget_is_monotone(self):
        for name in ("gss", "tcm", "gmatrix", "cm"):
            small = build(name, memory_bytes=8 * 1024)
            large = build(name, memory_bytes=128 * 1024)
            assert large.memory_bytes() > small.memory_bytes()

    def test_budgets_are_respected_not_exceeded(self):
        for name in ("gss", "gss-basic", "tcm", "gmatrix", "cm", "cu", "gsketch"):
            summary = build(name, memory_bytes=64 * 1024)
            assert summary.memory_bytes() <= 64 * 1024

    def test_expected_edges_is_the_equal_memory_invariant(self):
        # Sizing by expected edges puts every sketch on the budget of a
        # default GSS sized for that edge count.
        spec = SketchSpec("tcm", expected_edges=10_000)
        budget = reference_budget_bytes(spec)
        tcm = build(spec)
        assert 0.5 * budget <= tcm.memory_bytes() <= budget

    def test_expected_edges_matches_paper_sizing_for_gss(self):
        summary = build("gss", expected_edges=10_000)
        # m ~ sqrt(|E| / rooms) + 1, the paper's guidance.
        assert summary.config.matrix_width == int((10_000 / 2) ** 0.5) + 1

    def test_explicit_size_param_wins_over_budget(self):
        summary = build(
            "gss", memory_bytes=1 << 20, params={"matrix_width": 8}
        )
        assert summary.config.matrix_width == 8

    def test_backend_threads_through(self):
        summary = build("gss", memory_bytes=4096, backend="python")
        assert summary.backend_name == "python"
        tcm = build("tcm", memory_bytes=4096, backend="python")
        assert tcm.backend == "python"

    def test_spec_with_params_merges(self):
        spec = SketchSpec("gss", memory_bytes=4096).with_params(rooms=3)
        assert build(spec).config.rooms == 3

    def test_partitioned_splits_expected_edges_across_shards(self):
        sharded = build(
            "partitioned-gss", expected_edges=8_000, params={"partitions": 4}
        )
        # Each shard is sized for |E| / partitions edges.
        expected_width = int((8_000 / 4 / 2) ** 0.5) + 1
        assert sharded.shards[0].config.matrix_width == expected_width


class TestFromDictDispatch:
    def test_dispatch_by_tag(self):
        for name in ("gss", "tcm", "gmatrix", "cm", "cu"):
            summary = build(name, memory_bytes=4096, seed=3)
            summary.update("a", "b", 2.0)
            restored = from_dict(summary.to_dict())
            assert type(restored) is type(summary)
            assert restored.edge_query("a", "b") == summary.edge_query("a", "b")

    def test_cm_and_cu_restore_to_distinct_types(self):
        cm = build("cm", memory_bytes=4096)
        cu = build("cu", memory_bytes=4096)
        assert type(from_dict(cm.to_dict())).__name__ == "CountMinSketch"
        assert type(from_dict(cu.to_dict())).__name__ == "CountMinCUSketch"

    def test_legacy_gss_document_without_tag(self):
        summary = build("gss", memory_bytes=4096)
        summary.update("a", "b", 2.0)
        document = summary.to_dict()
        del document["sketch"]
        restored = from_dict(document)
        assert restored.edge_query("a", "b") == 2.0

    def test_unserializable_tag_rejected(self):
        with pytest.raises(ValueError, match="does not support serialization"):
            from_dict({"sketch": "gsketch"})

    def test_untagged_unknown_document_rejected(self):
        with pytest.raises(ValueError, match="no 'sketch' tag"):
            from_dict({"something": "else"})
