"""Tests for graceful cluster shutdown: ``ShardedSummary.shutdown`` and the
signal-handler wiring of :mod:`repro.cluster.lifecycle`.

The law: a shutdown — explicit call or SIGINT/SIGTERM — drains every
in-flight batch, checkpoints when asked, and releases every worker process
and shared-memory segment without ``resource_tracker`` warnings.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.api import SketchSpec, build
from repro.cluster import (
    DEFAULT_SHUTDOWN_SIGNALS,
    install_signal_handlers,
    load_checkpoint,
)

SHARD_PARAMS = dict(matrix_width=24, sequence_length=4, candidate_buckets=4)


def make_cluster(workers: int = 2):
    return build(
        SketchSpec("sharded-gss", params={"workers": workers, **SHARD_PARAMS})
    )


class TestShutdown:
    def test_shutdown_drains_and_checkpoints(self, tmp_path):
        cluster = make_cluster()
        cluster.update_many([(f"s{i}", "t", 1.0) for i in range(200)])
        # No explicit flush: shutdown itself must drain the outboxes.
        cluster.shutdown(checkpoint_dir=tmp_path)
        assert cluster.closed
        assert (tmp_path / "manifest.json").exists()
        restored = load_checkpoint(tmp_path)
        try:
            assert restored.update_count == 200
            assert restored.edge_query("s1", "t") == 1.0
        finally:
            restored.close()

    def test_shutdown_without_checkpoint_just_closes(self):
        cluster = make_cluster()
        cluster.update("a", "b", 1.0)
        cluster.shutdown()
        assert cluster.closed

    def test_shutdown_is_idempotent(self, tmp_path):
        cluster = make_cluster()
        cluster.shutdown(checkpoint_dir=tmp_path)
        cluster.shutdown(checkpoint_dir=tmp_path)  # no error, no double work
        assert cluster.closed


class TestSignalHandlers:
    def test_install_and_restore(self):
        cluster = make_cluster()
        try:
            originals = {
                signum: signal.getsignal(signum)
                for signum in DEFAULT_SHUTDOWN_SIGNALS
            }
            restore = install_signal_handlers(cluster)
            for signum in DEFAULT_SHUTDOWN_SIGNALS:
                assert signal.getsignal(signum) is not originals[signum]
            restore()
            for signum in DEFAULT_SHUTDOWN_SIGNALS:
                assert signal.getsignal(signum) is originals[signum]
        finally:
            cluster.close()

    @pytest.mark.skipif(os.name != "posix", reason="POSIX signals")
    def test_sigterm_drains_checkpoints_and_exits(self, tmp_path):
        """A real SIGTERM to a real process: drain, checkpoint, clean exit."""
        checkpoint_dir = tmp_path / "ckpt"
        script = textwrap.dedent(
            f"""
            import signal, sys, time
            from repro.api import SketchSpec, build
            from repro.cluster import install_signal_handlers

            cluster = build(SketchSpec(
                "sharded-gss",
                params=dict(workers=2, matrix_width=24,
                            sequence_length=4, candidate_buckets=4),
            ))
            install_signal_handlers(cluster, {str(checkpoint_dir)!r})
            cluster.update_many([(f"k{{i}}", "t", 1.0) for i in range(500)])
            print("READY", flush=True)
            while True:
                time.sleep(0.1)
            """
        )
        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert process.stdout.readline().strip() == "READY"
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        # The handler re-raises the signal after the drain: killed-by-SIGTERM
        # is the honest exit status for supervisors.
        assert process.returncode == -signal.SIGTERM, (process.returncode, stderr)
        assert "resource_tracker" not in stderr, stderr
        assert "Traceback" not in stderr, stderr
        assert (checkpoint_dir / "manifest.json").exists()
        restored = load_checkpoint(checkpoint_dir)
        try:
            # The un-flushed tail of the stream survived the signal.
            assert restored.update_count == 500
            assert restored.edge_query("k499", "t") == 1.0
        finally:
            restored.close()
