"""Integration tests for the extension experiments (window, partition, ...)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentConfig,
    run_algorithm_agreement_experiment,
    run_heavy_changer_experiment,
    run_memory_experiment,
    run_partition_experiment,
    run_window_experiment,
)
from repro.experiments.report import ExperimentResult


@pytest.fixture(scope="module")
def quick_config():
    config = ExperimentConfig.quick()
    config.extras["partition_counts"] = (1, 2)
    config.extras["window_span_fractions"] = (0.5, 1.0)
    config.extras["algorithm_node_cap"] = 80
    config.extras["changer_top_k"] = 5
    config.extras["burst_edges"] = 3
    return config


class TestWindowExperiment:
    def test_produces_rows_per_span(self, quick_config):
        result = run_window_experiment(quick_config)
        assert isinstance(result, ExperimentResult)
        spans = {row["span_fraction"] for row in result.rows}
        assert spans == {0.5, 1.0}

    def test_full_window_is_reasonably_precise(self, quick_config):
        result = run_window_experiment(quick_config)
        full = result.filter(span_fraction=1.0)
        assert full
        for row in full:
            assert 0.0 <= row["successor_precision"] <= 1.0
            assert row["edge_are"] >= 0.0
            assert row["live_slices"] >= 1

    def test_smaller_window_uses_no_more_memory(self, quick_config):
        result = run_window_experiment(quick_config)
        by_span = {row["span_fraction"]: row["memory_bytes"] for row in result.rows}
        assert by_span[0.5] <= by_span[1.0] * 1.01


class TestPartitionExperiment:
    def test_rows_per_partition_count(self, quick_config):
        result = run_partition_experiment(quick_config)
        assert {row["partitions"] for row in result.rows} == {1, 2}

    def test_accuracy_stays_high_when_sharded(self, quick_config):
        result = run_partition_experiment(quick_config)
        for row in result.rows:
            assert row["successor_precision"] >= 0.5
            assert row["load_imbalance"] >= 1.0
            assert 0.0 <= row["buffer_pct"] <= 1.0


class TestHeavyChangerExperiment:
    def test_reports_gss_and_exact(self, quick_config):
        result = run_heavy_changer_experiment(quick_config)
        structures = {row["structure"] for row in result.rows}
        assert any(label.startswith("GSS") for label in structures)
        assert any(label.startswith("Exact") for label in structures)

    def test_gss_finds_injected_burst(self, quick_config):
        result = run_heavy_changer_experiment(quick_config)
        gss_rows = [row for row in result.rows if row["structure"].startswith("GSS")]
        assert gss_rows
        for row in gss_rows:
            assert row["burst_recall"] >= 0.5
            assert 0.0 <= row["exact_top_k_precision"] <= 1.0


class TestAlgorithmAgreement:
    def test_gss_agrees_better_than_tcm(self, quick_config):
        result = run_algorithm_agreement_experiment(quick_config)
        gss_rows = [row for row in result.rows if row["structure"].startswith("GSS")]
        tcm_rows = [row for row in result.rows if row["structure"].startswith("TCM")]
        assert gss_rows and tcm_rows
        gss_score = sum(row["pagerank_overlap"] + row["degree_overlap"] for row in gss_rows)
        tcm_score = sum(row["pagerank_overlap"] + row["degree_overlap"] for row in tcm_rows)
        assert gss_score >= tcm_score

    def test_overlaps_are_fractions(self, quick_config):
        result = run_algorithm_agreement_experiment(quick_config)
        for row in result.rows:
            assert 0.0 <= row["pagerank_overlap"] <= 1.0
            assert 0.0 <= row["degree_overlap"] <= 1.0


class TestMemoryExperiment:
    def test_reports_analytical_and_measured_rows(self, quick_config):
        result = run_memory_experiment(quick_config)
        scopes = {row["scope"] for row in result.rows}
        assert "paper size (analytical)" in scopes
        assert "analog (measured sketch)" in scopes

    def test_sparse_graphs_make_dense_matrix_largest(self, quick_config):
        result = run_memory_experiment(quick_config)
        for row in result.filter(scope="paper size (analytical)"):
            assert row["adjacency_matrix_bytes"] > row["adjacency_list_bytes"]
            assert row["gss_bytes"] < row["adjacency_matrix_bytes"]

    def test_text_rendering(self, quick_config):
        result = run_memory_experiment(quick_config)
        text = result.to_text()
        assert "memory" in text
        assert "gss_bytes" in text
