"""Unit tests for the undirected GSS wrapper."""

import pytest

from repro.core.config import GSSConfig
from repro.core.undirected import UndirectedGSS, canonical_orientation
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.queries.primitives import EDGE_NOT_FOUND
from repro.queries.reachability import is_reachable
from repro.queries.triangle import count_triangles
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


def make_undirected(width=16) -> UndirectedGSS:
    return UndirectedGSS(
        GSSConfig(matrix_width=width, fingerprint_bits=16, sequence_length=4, candidate_buckets=4)
    )


class TestCanonicalOrientation:
    def test_symmetric(self):
        assert canonical_orientation("a", "b") == canonical_orientation("b", "a")

    def test_deterministic(self):
        assert canonical_orientation("x", "m") == ("m", "x")


class TestUndirectedGSS:
    def test_edge_query_is_symmetric(self):
        sketch = make_undirected()
        sketch.update("alice", "bob", 3.0)
        assert sketch.edge_query("alice", "bob") == 3.0
        assert sketch.edge_query("bob", "alice") == 3.0

    def test_weights_accumulate_across_orientations(self):
        sketch = make_undirected()
        sketch.update("alice", "bob", 1.0)
        sketch.update("bob", "alice", 2.0)
        assert sketch.edge_query("alice", "bob") == 3.0

    def test_absent_edge(self):
        sketch = make_undirected()
        sketch.update("a", "b")
        assert sketch.edge_query("c", "d") is None

    def test_neighbor_query_union(self):
        sketch = make_undirected()
        sketch.update("a", "b")
        sketch.update("c", "a")
        assert sketch.neighbor_query("a") == {"b", "c"}
        assert sketch.successor_query("a") == sketch.precursor_query("a")

    def test_degree_weight(self):
        sketch = make_undirected()
        sketch.update("a", "b", 2.0)
        sketch.update("c", "a", 3.0)
        assert sketch.degree_weight("a") == 5.0

    def test_compound_queries_work_on_wrapper(self):
        stream = GraphStream(
            [StreamEdge("a", "b"), StreamEdge("b", "c"), StreamEdge("c", "a"), StreamEdge("c", "d")]
        )
        sketch = make_undirected().ingest(stream)
        assert is_reachable(sketch, "d", "a")  # undirected view: d-c-a
        assert count_triangles(sketch, ["a", "b", "c", "d"]) >= 1

    def test_never_misses_neighbors_on_real_stream(self, small_stream):
        stats = small_stream.statistics()
        config = GSSConfig.for_edge_count(
            stats.distinct_edges, sequence_length=8, candidate_buckets=8
        )
        sketch = UndirectedGSS(config).ingest(small_stream)
        exact = AdjacencyListGraph()
        for edge in small_stream:
            exact.update(edge.source, edge.destination, edge.weight)
        for node in small_stream.nodes()[:80]:
            truth = exact.successor_query(node) | exact.precursor_query(node)
            assert truth <= sketch.neighbor_query(node)

    def test_memory_and_buffer_accessors(self):
        sketch = make_undirected()
        sketch.update("a", "b")
        assert sketch.memory_bytes() > 0
        assert 0.0 <= sketch.buffer_percentage <= 1.0
        assert sketch.config.matrix_width == 16
        assert sketch.sketch.matrix_edge_count == 1
