"""Extension experiment — graph-algorithm agreement on top of the primitives.

The paper's thesis is that the three primitives are enough to run "almost all
algorithms for graphs" over the summary.  This experiment runs two standard
analyses on GSS, on TCM (with its usual memory handicap) and on the exact
adjacency list, and measures how well the approximate answers agree with the
exact ones:

* PageRank — top-``k`` overlap between the sketch ranking and the exact one;
* top out-degree nodes (super-spreader detection) — same overlap metric.

The expected shape mirrors the primitive-level results: GSS agreement is near
1.0 while TCM's collapses, because every algorithm inherits the accuracy of
the successor queries underneath.
"""

from __future__ import annotations

from repro.exact.adjacency_list import AdjacencyListGraph
from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.queries.degree import top_k_by_out_degree
from repro.queries.pagerank import pagerank, ranking_overlap


def _top_set(pairs):
    return {node for node, _ in pairs}


def run_algorithm_agreement_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """PageRank and top-degree agreement of GSS / TCM against the exact store."""
    config = config or ExperimentConfig()
    fingerprint_bits = max(config.fingerprint_bits)
    top_k = config.extras.get("algorithm_top_k", 10)
    iterations = config.extras.get("pagerank_iterations", 15)
    node_cap = config.extras.get("algorithm_node_cap", 250)
    result = ExperimentResult(
        experiment="algorithms",
        description="PageRank / top-degree agreement with the exact store",
        columns=["dataset", "structure", "pagerank_overlap", "degree_overlap"],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        nodes = config.sample_items(stream.nodes(), limit=node_cap)

        exact = config.feed(AdjacencyListGraph(), stream)
        exact_ranks = pagerank(exact, nodes, iterations=iterations)
        exact_degrees = _top_set(top_k_by_out_degree(exact, nodes, top_k))

        width = config.recommended_width(statistics)
        gss = config.feed(config.build_gss(width, fingerprint_bits), stream)
        tcm = config.feed(
            config.build_tcm(gss, config.tcm_topology_memory_ratio), stream
        )

        for label, store in ((f"GSS(fsize={fingerprint_bits})", gss),
                             (f"TCM({int(config.tcm_topology_memory_ratio)}x memory)", tcm)):
            ranks = pagerank(store, nodes, iterations=iterations)
            degrees = _top_set(top_k_by_out_degree(store, nodes, top_k))
            degree_overlap = (
                len(degrees & exact_degrees) / len(exact_degrees) if exact_degrees else 1.0
            )
            result.add(
                dataset=name,
                structure=label,
                pagerank_overlap=ranking_overlap(exact_ranks, ranks, top_k),
                degree_overlap=degree_overlap,
            )
    return result
