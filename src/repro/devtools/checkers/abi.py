"""abi-check: the ctypes bindings must match ``kernel.c`` exactly.

The native backend calls the compiled kernel through :mod:`ctypes`, which
performs **no** signature checking: if ``kernel.c`` gains a parameter and
the ``argtypes`` list in ``core/_native/__init__.py`` is not updated, the
kernel reads garbage off the stack and the backend silently stops being
bit-identical (or corrupts the room arrays).  This checker parses the
exported C declarations with :mod:`repro.devtools.cdecl` and cross-checks
them against the bindings:

* every exported (non-``static``) C function must be bound, and every
  bound name must still exist in the C source;
* ``restype`` must match the C return type, ``argtypes`` must match the
  parameter list position by position (pointers bind as ``c_void_p``, or
  ``c_char_p`` for ``char``-family pointers);
* every ``ctypes.Structure`` subclass in the binding module must mirror a
  same-named C struct field for field, in order.

Kernel/binding pairs are discovered from the scanned tree: any
``kernel.c`` with a sibling ``__init__.py`` is checked, so fixture tests
lint synthetic pairs the same way the repo pair is linted.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.cdecl import CParseError, parse_c_declarations
from repro.devtools.framework import Checker, Project, PyFile, Violation

__all__ = ["AbiChecker"]

#: C scalar type → the one ctypes name that matches it.
_SCALAR_CTYPES = {
    "void": "None",
    "int": "c_int",
    "unsigned int": "c_uint",
    "int8_t": "c_int8",
    "uint8_t": "c_uint8",
    "int16_t": "c_int16",
    "uint16_t": "c_uint16",
    "int32_t": "c_int32",
    "uint32_t": "c_uint32",
    "int64_t": "c_int64",
    "uint64_t": "c_uint64",
    "size_t": "c_size_t",
    "float": "c_float",
    "double": "c_double",
    "char": "c_char",
}

_CHAR_POINTEES = {"char", "unsigned char", "signed char"}


def _acceptable_ctypes(c_type: str) -> Tuple[str, ...]:
    """ctypes names that correctly bind one canonical C type."""
    if c_type.endswith("*"):
        pointee = c_type[:-1].strip()
        if pointee in _CHAR_POINTEES:
            return ("c_void_p", "c_char_p", "POINTER")
        return ("c_void_p", "POINTER")
    scalar = _SCALAR_CTYPES.get(c_type)
    return (scalar,) if scalar is not None else ()


def _ctype_name(node: ast.AST) -> Optional[str]:
    """``c.c_int64`` / ``ctypes.c_uint8`` / ``None`` → its short name."""
    if isinstance(node, ast.Constant) and node.value is None:
        return "None"
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):  # POINTER(x) binds any pointer
        inner = _ctype_name(node.func)
        return "POINTER" if inner == "POINTER" else inner
    return None


class _Binding:
    """What one binding module declares for one C function."""

    def __init__(self) -> None:
        self.restype: Optional[str] = None
        self.restype_line: int = 0
        self.argtypes: Optional[List[str]] = None
        self.argtypes_line: int = 0


def _collect_bindings(pyfile: PyFile) -> Dict[str, _Binding]:
    """``lib.<name>.restype/.argtypes`` assignments, wherever they appear."""
    bindings: Dict[str, _Binding] = {}
    for node in pyfile.walk():
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and target.attr in ("restype", "argtypes")
            and isinstance(target.value, ast.Attribute)
        ):
            continue
        function_name = target.value.attr
        binding = bindings.setdefault(function_name, _Binding())
        if target.attr == "restype":
            binding.restype = _ctype_name(node.value) or "?"
            binding.restype_line = node.lineno
        else:
            if isinstance(node.value, (ast.List, ast.Tuple)):
                binding.argtypes = [
                    _ctype_name(element) or "?" for element in node.value.elts
                ]
            else:
                binding.argtypes = None
            binding.argtypes_line = node.lineno
    return bindings


def _collect_structures(pyfile: PyFile) -> Dict[str, Tuple[int, List[Tuple[str, str]]]]:
    """``ctypes.Structure`` subclasses → (line, ``_fields_`` pairs)."""
    structures: Dict[str, Tuple[int, List[Tuple[str, str]]]] = {}
    for node in pyfile.walk():
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(
            (isinstance(base, ast.Attribute) and base.attr == "Structure")
            or (isinstance(base, ast.Name) and base.id == "Structure")
            for base in node.bases
        ):
            continue
        fields: List[Tuple[str, str]] = []
        for statement in node.body:
            if not (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == "_fields_"
                and isinstance(statement.value, (ast.List, ast.Tuple))
            ):
                continue
            for element in statement.value.elts:
                if isinstance(element, (ast.Tuple, ast.List)) and len(element.elts) >= 2:
                    name_node, type_node = element.elts[0], element.elts[1]
                    field_name = (
                        name_node.value
                        if isinstance(name_node, ast.Constant)
                        else "?"
                    )
                    fields.append((str(field_name), _ctype_name(type_node) or "?"))
        structures[node.name.lstrip("_")] = (node.lineno, fields)
    return structures


class AbiChecker(Checker):
    rule = "abi-check"
    description = (
        "ctypes argtypes/restype/Structure bindings match the exported "
        "declarations in kernel.c"
    )
    scope = ("_native",)

    #: Override for fixture tests: explicit (kernel.c, binding.py) pairs.
    def __init__(self, pairs: Optional[List[Tuple[Path, Path]]] = None) -> None:
        self._pairs = pairs

    def check_project(self, project: Project) -> Iterator[Violation]:
        if self._pairs is not None:
            for kernel_path, binding_path in self._pairs:
                kernel_rel = kernel_path.as_posix()
                binding = PyFile(
                    binding_path,
                    binding_path.as_posix(),
                    binding_path.read_text(encoding="utf-8"),
                )
                yield from self._check_pair(
                    kernel_path.read_text(encoding="utf-8"), kernel_rel, binding
                )
            return
        by_path = {pyfile.path: pyfile for pyfile in project.py_files}
        for c_path, c_rel in project.c_files:
            if c_path.name != "kernel.c":
                continue
            binding = by_path.get(c_path.parent / "__init__.py")
            if binding is None or binding.tree is None:
                yield Violation(
                    rule=self.rule,
                    path=c_rel,
                    line=1,
                    message="kernel.c has no parseable sibling __init__.py binding",
                )
                continue
            yield from self._check_pair(
                c_path.read_text(encoding="utf-8"), c_rel, binding
            )

    def _check_pair(
        self, c_source: str, c_rel: str, binding: PyFile
    ) -> Iterator[Violation]:
        try:
            functions, structs = parse_c_declarations(c_source)
        except CParseError as error:
            yield Violation(
                rule=self.rule,
                path=c_rel,
                line=1,
                message=f"cannot parse C declarations: {error}",
            )
            return
        bindings = _collect_bindings(binding)

        for name, function in sorted(functions.items()):
            bound = bindings.get(name)
            if bound is None:
                yield Violation(
                    rule=self.rule,
                    path=c_rel,
                    line=function.line,
                    message=(
                        f"exported function {name}() has no ctypes binding in "
                        f"{binding.rel}"
                    ),
                )
                continue
            expected_ret = _acceptable_ctypes(function.return_type)
            if bound.restype is None:
                yield Violation(
                    rule=self.rule,
                    path=binding.rel,
                    line=bound.argtypes_line or 1,
                    message=f"{name}: argtypes bound but restype never set",
                )
            elif expected_ret and bound.restype not in expected_ret:
                yield Violation(
                    rule=self.rule,
                    path=binding.rel,
                    line=bound.restype_line,
                    message=(
                        f"{name}: restype {bound.restype} does not match C "
                        f"return type `{function.return_type}` "
                        f"(expected {' or '.join(expected_ret)})"
                    ),
                )
            if bound.argtypes is None:
                yield Violation(
                    rule=self.rule,
                    path=binding.rel,
                    line=bound.restype_line or 1,
                    message=f"{name}: restype bound but argtypes never set",
                )
                continue
            if len(bound.argtypes) != len(function.params):
                yield Violation(
                    rule=self.rule,
                    path=binding.rel,
                    line=bound.argtypes_line,
                    message=(
                        f"{name}: argtypes has {len(bound.argtypes)} entries "
                        f"but the C declaration takes {len(function.params)} "
                        f"parameters"
                    ),
                )
                continue
            for position, ((c_type, c_name), ctype) in enumerate(
                zip(function.params, bound.argtypes)
            ):
                acceptable = _acceptable_ctypes(c_type)
                if acceptable and ctype not in acceptable:
                    yield Violation(
                        rule=self.rule,
                        path=binding.rel,
                        line=bound.argtypes_line,
                        message=(
                            f"{name}: argtypes[{position}] is {ctype} but C "
                            f"parameter `{c_type} {c_name}` expects "
                            f"{' or '.join(acceptable)}"
                        ),
                    )

        for name, bound in sorted(bindings.items()):
            if name not in functions:
                yield Violation(
                    rule=self.rule,
                    path=binding.rel,
                    line=bound.restype_line or bound.argtypes_line or 1,
                    message=(
                        f"binding for {name}() has no exported counterpart in "
                        f"{c_rel} (stale binding or renamed kernel function)"
                    ),
                )

        for struct_name, (line, fields) in sorted(
            _collect_structures(binding).items()
        ):
            c_struct = structs.get(struct_name)
            if c_struct is None:
                yield Violation(
                    rule=self.rule,
                    path=binding.rel,
                    line=line,
                    message=(
                        f"ctypes.Structure {struct_name} has no struct "
                        f"{struct_name} in {c_rel}"
                    ),
                )
                continue
            c_fields = list(c_struct.fields)
            if [name for _, name in c_fields] != [name for name, _ in fields]:
                yield Violation(
                    rule=self.rule,
                    path=binding.rel,
                    line=line,
                    message=(
                        f"{struct_name}: field names/order "
                        f"{[name for name, _ in fields]} do not match C layout "
                        f"{[name for _, name in c_fields]}"
                    ),
                )
                continue
            for (field_name, ctype), (c_type, _) in zip(fields, c_fields):
                acceptable = _acceptable_ctypes(c_type)
                if acceptable and ctype not in acceptable:
                    yield Violation(
                        rule=self.rule,
                        path=binding.rel,
                        line=line,
                        message=(
                            f"{struct_name}.{field_name}: bound as {ctype} but "
                            f"C field is `{c_type}` "
                            f"(expected {' or '.join(acceptable)})"
                        ),
                    )
