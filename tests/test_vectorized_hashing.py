"""Bit-for-bit equivalence of the vectorized hashing pipeline.

The NumPy matrix backend is only correct if every array primitive in
``repro.hashing.vectorized`` returns exactly what its scalar counterpart
returns, input by input.  These tests drive both sides with the same values —
including the nasty ones (empty strings, non-ASCII bytes, 64-bit boundary
integers, negative integers) — and assert equality element-wise.

The module also pins down the ``hash_key`` bytes-path fix (HASH_VERSION 2):
raw bytes are hashed directly instead of through the latin-1 -> utf-8 round
trip that double-encoded bytes >= 0x80.
"""

from __future__ import annotations

import pytest

from repro.hashing.vectorized import NUMPY_AVAILABLE

if not NUMPY_AVAILABLE:
    pytest.skip("NumPy not installed", allow_module_level=True)

import numpy as np

from repro.hashing.hash_functions import (
    HASH_VERSION,
    _splitmix64,
    hash_bytes,
    hash_key,
    hash_string,
)
from repro.hashing.linear_congruence import (
    LinearCongruentialSequence,
    address_sequence,
    candidate_sequence,
    recover_address,
)
from repro.hashing.vectorized import (
    NUMPY_AVAILABLE,
    address_sequences,
    candidate_pair_arrays,
    hash_bytes_array,
    hash_ints_array,
    hash_keys_array,
    hash_strings_array,
    lcg_values_at,
    node_hashes_array,
    recover_addresses,
    splitmix64_array,
)

STRING_KEYS = ["", "a", "node-42", "n" * 100, "naïve-ünïcode-node", "x"]
BYTES_KEYS = [b"", b"a", b"ip-10.0.0.1", bytes(range(256)), b"\xff\xfe\x00", b"x" * 77]
INT_KEYS = [0, 1, -1, 7, -(2**63), 2**63 - 1, 2**64 - 1, 2**64, 123456789123456789]


class TestBytesPathFix:
    def test_hash_version_bumped(self):
        assert HASH_VERSION == 2

    def test_bytes_hash_raw_not_latin1_roundtrip(self):
        data = b"\xc3\xa9\xff"
        # v1 behaviour: FNV over the UTF-8 re-encoding of the latin-1 decode,
        # which double-encodes every byte >= 0x80.
        v1 = hash_string(data.decode("latin-1"))
        assert hash_key(data) == hash_bytes(data)
        assert hash_key(data) != v1

    def test_ascii_bytes_values_unchanged_from_v1(self):
        data = b"ip-10.0.0.1"
        assert hash_key(data) == hash_string(data.decode("latin-1"))

    def test_str_and_ascii_bytes_agree(self):
        assert hash_key(b"node-7") == hash_key("node-7")


class TestVectorizedEqualsScalar:
    def test_numpy_available_flag(self):
        assert NUMPY_AVAILABLE is True

    def test_splitmix64(self):
        values = [0, 1, 2**64 - 1, 0x9E3779B97F4A7C15, 12345678901234567]
        array = splitmix64_array(np.array(values, dtype=np.uint64))
        assert array.tolist() == [_splitmix64(value) for value in values]

    @pytest.mark.parametrize("seed", [0, 1, 97, 2**31])
    def test_hash_strings(self, seed):
        result = hash_strings_array(STRING_KEYS, seed)
        assert result.tolist() == [hash_string(key, seed) for key in STRING_KEYS]

    @pytest.mark.parametrize("seed", [0, 7])
    def test_hash_bytes(self, seed):
        result = hash_bytes_array(BYTES_KEYS, seed)
        assert result.tolist() == [hash_bytes(key, seed) for key in BYTES_KEYS]

    def test_hash_bytes_large_batch_grouping(self):
        # Exercise the argsort-based grouping path (> 512 keys).
        keys = [f"node-{index % 97}-{'x' * (index % 9)}".encode() for index in range(1200)]
        assert hash_bytes_array(keys).tolist() == [hash_bytes(key) for key in keys]

    @pytest.mark.parametrize("seed", [0, 3])
    def test_hash_ints(self, seed):
        result = hash_ints_array(INT_KEYS, seed)
        assert result.tolist() == [hash_key(key, seed) for key in INT_KEYS]

    def test_hash_keys_dispatch_and_mixed_fallback(self):
        assert hash_keys_array(STRING_KEYS).tolist() == [hash_key(k) for k in STRING_KEYS]
        assert hash_keys_array(BYTES_KEYS).tolist() == [hash_key(k) for k in BYTES_KEYS]
        assert hash_keys_array(INT_KEYS).tolist() == [hash_key(k) for k in INT_KEYS]
        mixed = ["a", 7, b"bytes", ("t", 1), 3.5, None]
        assert hash_keys_array(mixed).tolist() == [hash_key(k) for k in mixed]

    def test_node_hashes_match_node_hasher(self):
        from repro.hashing.hash_functions import NodeHasher

        hasher = NodeHasher(value_range=4096, seed=11)
        keys = [f"n{i}" for i in range(200)]
        assert node_hashes_array(keys, 4096, 11).tolist() == [hasher(k) for k in keys]

    def test_node_hashes_rejects_bad_range(self):
        with pytest.raises(ValueError):
            node_hashes_array(["a"], 0)


class TestVectorizedLCG:
    lcg = LinearCongruentialSequence()

    def test_address_sequences(self):
        bases = np.array([0, 5, 17, 30], dtype=np.int64)
        fps = np.array([3, 250, 0, 65535], dtype=np.int64)
        matrix = address_sequences(bases, fps, 8, 31, self.lcg)
        for row, (base, fp) in enumerate(zip(bases.tolist(), fps.tolist())):
            assert matrix[row].tolist() == address_sequence(base, fp, 8, 31, self.lcg)

    def test_lcg_values_at_and_recover(self):
        fps = np.array([3, 250, 0, 65535, 9], dtype=np.int64)
        indices = np.array([1, 4, 2, 8, 1], dtype=np.int64)
        values = lcg_values_at(fps, indices, self.lcg)
        for position in range(len(fps)):
            assert values[position] == self.lcg.value_at(int(fps[position]), int(indices[position]))
        observed = np.array([7, 12, 0, 30, 19], dtype=np.int64)
        recovered = recover_addresses(observed, fps, indices, 31, self.lcg)
        for position in range(len(fps)):
            assert recovered[position] == recover_address(
                int(observed[position]), int(fps[position]), int(indices[position]), 31, self.lcg
            )

    def test_lcg_values_at_rejects_zero_index(self):
        with pytest.raises(ValueError):
            lcg_values_at(np.array([1]), np.array([0]), self.lcg)

    def test_candidate_pair_arrays_match_scalar_draws(self):
        source_fps = np.array([3, 250, 0, 77], dtype=np.int64)
        destination_fps = np.array([9, 1, 65535, 77], dtype=np.int64)
        rows, columns = candidate_pair_arrays(source_fps, destination_fps, 16, 8, self.lcg)
        for edge in range(len(source_fps)):
            scalar = candidate_sequence(
                int(source_fps[edge]), int(destination_fps[edge]), 16, 8, self.lcg
            )
            # The vectorized variant keeps duplicates (probing a bucket twice
            # is a no-op); the scalar helper returns the same draws pre-dedup.
            assert list(zip(rows[edge].tolist(), columns[edge].tolist())) == scalar
