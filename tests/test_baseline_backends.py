"""Backend threading through the TCM / gMatrix / CM / CU baselines.

Table I compares GSS against the baselines; for the comparison to stay
apples-to-apples each baseline accepts the same ``backend`` selector and its
batched ``update_many`` must agree with the scalar path (for the
exactly-representable weights the experiments use) on either backend.
"""

from __future__ import annotations

import pytest

from repro.baselines.cm_sketch import CountMinSketch
from repro.baselines.cu_sketch import CountMinCUSketch
from repro.baselines.gmatrix import GMatrix
from repro.baselines.tcm import TCM
from repro.core.backends import NUMPY_AVAILABLE

BACKENDS = ["python"] + (["numpy"] if NUMPY_AVAILABLE else [])

ITEMS = [
    (f"n{i % 9}", f"n{(i * 4 + 1) % 9}", float(1 + i % 3)) for i in range(60)
] + [("n1", "n2", -1.0), ("n0", "n0", 2.0)]


@pytest.mark.parametrize("backend", BACKENDS)
class TestTCMBackends:
    def test_update_many_matches_scalar(self, backend):
        scalar = TCM(width=12, depth=3, seed=5, backend=backend)
        batched = TCM(width=12, depth=3, seed=5, backend=backend)
        for source, destination, weight in ITEMS:
            scalar.update(source, destination, weight)
        batched.update_many(ITEMS[:25])
        batched.update_many(ITEMS[25:])
        assert batched.update_count == scalar.update_count
        for source, destination, _ in ITEMS:
            assert batched.edge_query(source, destination) == scalar.edge_query(source, destination)
            assert batched.successor_query(source) == scalar.successor_query(source)
            assert batched.node_out_weight(source) == scalar.node_out_weight(source)

    def test_with_memory_of_passes_backend(self, backend):
        tcm = TCM.with_memory_of(4096, backend=backend)
        assert tcm.backend == backend
        tcm.update("a", "b", 1.0)
        assert tcm.edge_query("a", "b") == 1.0


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy not installed")
class TestNumpyBaselinesMatchPython:
    def test_tcm_backends_agree(self):
        python_tcm = TCM(width=12, depth=3, seed=5, backend="python")
        numpy_tcm = TCM(width=12, depth=3, seed=5, backend="numpy")
        python_tcm.update_many(ITEMS)
        numpy_tcm.update_many(ITEMS)
        for source, destination, _ in ITEMS:
            assert python_tcm.edge_query(source, destination) == (
                numpy_tcm.edge_query(source, destination)
            )
            assert python_tcm.node_in_weight(destination) == (
                numpy_tcm.node_in_weight(destination)
            )

    def test_cm_backends_agree(self):
        python_cm = CountMinSketch(width=64, depth=3, seed=2, backend="python")
        numpy_cm = CountMinSketch(width=64, depth=3, seed=2, backend="numpy")
        python_cm.update_many(ITEMS)
        numpy_cm.update_many(ITEMS)
        for source, destination, _ in ITEMS:
            estimate = numpy_cm.edge_query(source, destination)
            assert isinstance(estimate, float)
            assert python_cm.edge_query(source, destination) == estimate

    def test_gmatrix_backends_agree(self):
        python_gm = GMatrix(width=16, seed=3, backend="python")
        numpy_gm = GMatrix(width=16, seed=3, backend="numpy")
        python_gm.update_many(ITEMS)
        numpy_gm.update_many(ITEMS)
        for source, destination, _ in ITEMS:
            assert python_gm.edge_query(source, destination) == (
                numpy_gm.edge_query(source, destination)
            )
            assert python_gm.successor_query(source) == numpy_gm.successor_query(source)
            assert python_gm.node_out_weight(source) == numpy_gm.node_out_weight(source)


@pytest.mark.parametrize("backend", BACKENDS)
class TestScalarBatchedAgreement:
    def test_cm_update_many_matches_scalar(self, backend):
        scalar = CountMinSketch(width=64, depth=3, seed=2, backend=backend)
        batched = CountMinSketch(width=64, depth=3, seed=2, backend=backend)
        for source, destination, weight in ITEMS:
            scalar.update(source, destination, weight)
        batched.update_many(ITEMS)
        for source, destination, _ in ITEMS:
            assert batched.edge_query(source, destination) == scalar.edge_query(source, destination)

    def test_cu_update_many_is_item_by_item(self, backend):
        # Conservative update is order-dependent, so update_many must NOT
        # pre-aggregate: it has to equal the scalar item-by-item sequence.
        scalar = CountMinCUSketch(width=32, depth=3, seed=4, backend=backend)
        batched = CountMinCUSketch(width=32, depth=3, seed=4, backend=backend)
        for source, destination, weight in ITEMS:
            scalar.update(source, destination, weight)
        assert batched.update_many(ITEMS) == len(ITEMS)
        for source, destination, _ in ITEMS:
            assert batched.edge_query(source, destination) == scalar.edge_query(source, destination)

    def test_gmatrix_update_many_matches_scalar(self, backend):
        scalar = GMatrix(width=16, seed=3, backend=backend)
        batched = GMatrix(width=16, seed=3, backend=backend)
        for source, destination, weight in ITEMS:
            scalar.update(source, destination, weight)
        batched.update_many(ITEMS)
        assert batched.update_count == scalar.update_count
        for source, destination, _ in ITEMS:
            assert batched.edge_query(source, destination) == scalar.edge_query(source, destination)
