"""Count-Min sketch with Conservative Update (the "CU sketch").

Estan & Varghese's conservative-update rule only raises the counters that are
currently equal to the minimum estimate, which reduces over-estimation for
insert-only streams.  Like the plain CM sketch it answers edge-weight queries
only and supports no topology queries — the limitation that motivates GSS.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Hashable, Iterable, Tuple

from repro.baselines.cm_sketch import CountMinSketch
from repro.queries.primitives import Capabilities


class CountMinCUSketch(CountMinSketch):
    """CM sketch whose update applies the conservative-update rule.

    Conservative update is only correct for non-negative weights; a negative
    weight (deletion) falls back to the plain CM update so the estimate stays
    an upper bound.
    """

    _SKETCH_TAG = "cu"

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Like CM, but the batched path cannot be optimized: conservative
        update is order-dependent, so ``update_many`` applies the scalar rule
        per item."""
        return replace(CountMinSketch.capabilities(), batched_updates=False)

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Raise only the minimal counters (conservative update)."""
        self._update_count += 1
        positions = self._positions(source, destination)
        if weight < 0:
            for row, column in positions:
                self.counters[row][column] += weight
            return
        current = min(self.counters[row][column] for row, column in positions)
        target = current + weight
        for row, column in positions:
            if self.counters[row][column] < target:
                self.counters[row][column] = target

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch item-by-item.

        Conservative update is order-dependent across interleaved keys, so
        unlike the base CM sketch a batch cannot be pre-aggregated without
        changing the estimate; the batched API exists for interface parity
        and applies the scalar rule per item on every backend.
        """
        count = 0
        for source, destination, weight in items:
            self.update(source, destination, weight)
            count += 1
        return count
