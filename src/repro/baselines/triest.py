"""TRIEST (De Stefani et al., KDD 2016): streaming triangle counting.

TRIEST keeps a fixed-size reservoir sample of the (undirected, de-duplicated)
edge stream and maintains an estimate of the global triangle count.  Figure 14
of the paper compares GSS against TRIEST with equal memory for triangle
counting on cit-HepPh, so we provide the two insertion-only variants:

* ``TriestBase`` — counts a triangle only when all three edges are in the
  reservoir and rescales by the sampling probability at query time;
* ``TriestImproved`` — counts triangles at arrival time using the unbiased
  "increment by eta(t)" rule, which has lower variance.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Set, Tuple


def _undirected_key(a: Hashable, b: Hashable) -> Tuple[Hashable, Hashable]:
    """Canonical (sorted by repr) undirected edge key."""
    return (a, b) if repr(a) <= repr(b) else (b, a)


class _ReservoirGraph:
    """Adjacency view of the edges currently held in the reservoir."""

    def __init__(self) -> None:
        self._adjacency: Dict[Hashable, Set[Hashable]] = {}
        self._edges: Set[Tuple[Hashable, Hashable]] = set()

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, key: Tuple[Hashable, Hashable]) -> bool:
        return key in self._edges

    def add(self, key: Tuple[Hashable, Hashable]) -> None:
        first, second = key
        self._edges.add(key)
        self._adjacency.setdefault(first, set()).add(second)
        self._adjacency.setdefault(second, set()).add(first)

    def remove(self, key: Tuple[Hashable, Hashable]) -> None:
        first, second = key
        self._edges.discard(key)
        self._adjacency.get(first, set()).discard(second)
        self._adjacency.get(second, set()).discard(first)

    def common_neighbors(self, a: Hashable, b: Hashable) -> Set[Hashable]:
        return self._adjacency.get(a, set()) & self._adjacency.get(b, set())

    def random_edge(self, rng: random.Random) -> Tuple[Hashable, Hashable]:
        return rng.choice(tuple(self._edges))


class TriestBase:
    """TRIEST-BASE: reservoir sampling + rescaled triangle counts."""

    def __init__(self, reservoir_size: int, seed: int = 0) -> None:
        if reservoir_size < 6:
            raise ValueError("reservoir_size must be at least 6")
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._graph = _ReservoirGraph()
        self._stream_length = 0
        self._sample_triangles = 0.0

    # -- updates -----------------------------------------------------------

    def add_edge(self, source: Hashable, destination: Hashable) -> None:
        """Process one (undirected, assumed distinct) edge arrival."""
        if source == destination:
            return
        key = _undirected_key(source, destination)
        if key in self._graph:
            return
        self._stream_length += 1
        if self._sample_edge(key):
            self._update_counters(key, +1)
            self._graph.add(key)

    def _sample_edge(self, key: Tuple[Hashable, Hashable]) -> bool:
        if len(self._graph) < self.reservoir_size:
            return True
        if self._rng.random() < self.reservoir_size / self._stream_length:
            evicted = self._graph.random_edge(self._rng)
            self._graph.remove(evicted)
            self._update_counters(evicted, -1)
            return True
        return False

    def _update_counters(self, key: Tuple[Hashable, Hashable], delta: int) -> None:
        first, second = key
        shared = self._graph.common_neighbors(first, second)
        self._sample_triangles += delta * len(shared)

    # -- estimates -----------------------------------------------------------

    def _scaling_factor(self) -> float:
        t = self._stream_length
        m = self.reservoir_size
        if t <= m:
            return 1.0
        return max(
            1.0,
            (t * (t - 1) * (t - 2)) / (m * (m - 1) * (m - 2)),
        )

    def triangle_estimate(self) -> float:
        """Estimated number of global triangles seen so far."""
        return self._sample_triangles * self._scaling_factor()

    def ingest(self, edges) -> "TriestBase":
        """Feed an iterable of stream edges (direction is ignored)."""
        for edge in edges:
            self.add_edge(edge.source, edge.destination)
        return self

    def memory_bytes(self) -> int:
        """Reservoir memory under a C layout (two ids per edge, 8 bytes each)."""
        return self.reservoir_size * 16


class TriestImproved(TriestBase):
    """TRIEST-IMPR: counts weighted triangles at arrival time (lower variance)."""

    def add_edge(self, source: Hashable, destination: Hashable) -> None:
        if source == destination:
            return
        key = _undirected_key(source, destination)
        if key in self._graph:
            return
        self._stream_length += 1
        eta = self._eta()
        first, second = key
        shared = self._graph.common_neighbors(first, second)
        self._sample_triangles += eta * len(shared)
        if self._sample_edge_improved():
            self._graph.add(key)

    def _eta(self) -> float:
        t = self._stream_length
        m = self.reservoir_size
        if t <= m:
            return 1.0
        return max(1.0, ((t - 1) * (t - 2)) / (m * (m - 1)))

    def _sample_edge_improved(self) -> bool:
        if len(self._graph) < self.reservoir_size:
            return True
        if self._rng.random() < self.reservoir_size / self._stream_length:
            evicted = self._graph.random_edge(self._rng)
            self._graph.remove(evicted)
            return True
        return False

    def _scaling_factor(self) -> float:  # estimates are already unbiased
        return 1.0
