"""Use case 3 (paper Section I): troubleshooting in data centers.

Communication log entries between machines form a graph stream.  Operators ask
windowed questions: "inside the last N log entries, did messages from service A
ever reach database D?", "what exactly talked to the broken machine?", "is the
suspicious communication pattern (a specific labeled subgraph) present?".

This example slices a web-graph analog into tumbling windows, summarizes each
window with GSS and answers those questions, including labeled subgraph
matching against the exact matcher used as ground truth.

Run with::

    python examples/datacenter_troubleshooting.py
"""

from __future__ import annotations

import random

from repro import GSS, GSSConfig
from repro.baselines import WindowedExactMatcher
from repro.datasets import load_dataset
from repro.datasets.synthetic import labeled_stream
from repro.experiments.subgraph import random_walk_pattern
from repro.queries.reachability import is_reachable
from repro.queries.subgraph import LabeledDiGraph, SubgraphMatcher
from repro.streaming.window import tumbling_windows


def summarize_window(window) -> GSS:
    """Build a GSS sized for one window of communication records."""
    statistics = window.statistics()
    config = GSSConfig.for_edge_count(
        max(16, statistics.distinct_edges),
        fingerprint_bits=16,
        sequence_length=8,
        candidate_buckets=8,
    )
    return GSS(config).ingest(window)


def main() -> None:
    # Communication log: edges labeled by port/protocol, as in the paper's
    # subgraph-matching experiment.
    stream = labeled_stream(load_dataset("web-NotreDame", scale=0.2), label_count=6, seed=3)
    labels = {edge.key: edge.label for edge in stream}
    print(f"communication log: {len(stream)} entries, "
          f"{stream.statistics().node_count} machines")

    rng = random.Random(7)
    for index, window in enumerate(tumbling_windows(stream, 2500)):
        if index >= 3:
            break
        sketch = summarize_window(window)
        machines = window.nodes()
        print(f"\n=== window {index}: {len(window)} log entries, "
              f"{len(machines)} machines, GSS {sketch.memory_bytes() / 1024:.1f} KiB ===")

        # 1. Did A's messages reach D inside this window?
        source, destination = machines[0], machines[-1]
        print(f"reachability {source} -> {destination}: "
              f"{is_reachable(sketch, source, destination, max_nodes=2000)}")

        # 2. What talked to a broken machine, and how often?
        broken = machines[len(machines) // 2]
        clients = sketch.precursor_query(broken)
        print(f"machines that talked to {broken!r}: {len(clients)}")
        for client in list(clients)[:3]:
            weight = sketch.edge_query(client, broken)
            if weight is not None:
                print(f"  {client} -> {broken}: {weight:.0f} messages")

        # 3. Is a suspicious labeled communication pattern present?
        exact = WindowedExactMatcher(window)
        extracted = random_walk_pattern(exact.graph, 5, rng)
        if extracted is None:
            print("no pattern extracted from this window")
            continue
        pattern, _ = extracted
        sketch_graph = LabeledDiGraph.from_store(sketch, machines, labels)
        embedding = SubgraphMatcher(sketch_graph).find_one(pattern)
        verified = embedding is not None and exact.contains_edges(
            [(embedding[e.source], embedding[e.destination]) for e in pattern.edges]
        )
        print(f"suspicious {len(pattern)}-edge pattern found via GSS: "
              f"{embedding is not None} (verified against the raw log: {verified})")


if __name__ == "__main__":
    main()
