"""Shared configuration of the experiment runners.

The defaults are sized so that the whole benchmark suite finishes in minutes
in pure Python while keeping the structure of the paper's Section VII: the
same datasets (as synthetic analogs), the same width sweeps (expressed as
multiples of the recommended width ``sqrt(|E| / rooms)``), the same two
fingerprint sizes and the same memory handicap granted to TCM.

Every sketch the runners measure is constructed through the
:mod:`repro.api` factory (:meth:`ExperimentConfig.build_gss`,
:meth:`ExperimentConfig.build_tcm`, :meth:`ExperimentConfig.build_sketch`),
so the byte→shape arithmetic of the equal-memory comparisons lives in the
registry instead of being re-derived per runner, and streams are fed through
:class:`repro.api.StreamSession` (:meth:`ExperimentConfig.feed`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.api import SketchSpec, StreamSession, build, sketch_info
from repro.streaming.stream import GraphStream, StreamStatistics


#: Datasets in the paper's order; the two "small" ones come first, matching
#: the paper's choice of r = k = 8 for them and r = k = 16 for the rest.
PAPER_DATASETS: Tuple[str, ...] = (
    "email-EuAll",
    "cit-HepPh",
    "web-NotreDame",
    "lkml-reply",
    "caida-networkflow",
)


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment runner.

    ``datasets`` selects which analogs to run on, ``dataset_scale`` shrinks or
    grows them, ``width_factors`` is the sweep over matrix widths relative to
    the recommended width, and ``query_sample`` caps the number of node/edge
    queries issued per configuration (``None`` = the full query set, exactly
    as in the paper).  ``extra_sketches`` adds comparison rows for other
    registered sketches at the reference GSS's memory (CLI ``--sketch``).
    """

    datasets: Sequence[str] = PAPER_DATASETS[:3]
    dataset_scale: float = 0.25
    width_factors: Sequence[float] = (0.8, 1.0, 1.2)
    fingerprint_bits: Sequence[int] = (12, 16)
    sequence_length: int = 8
    candidate_buckets: int = 8
    rooms: int = 2
    tcm_depth: int = 4
    tcm_edge_memory_ratio: float = 8.0
    tcm_topology_memory_ratio: float = 64.0
    query_sample: int = 400
    reachability_pairs: int = 50
    seed: int = 20190419
    backend: str = "python"
    extra_sketches: Sequence[str] = ()
    #: Worker-process count for the ``sharded-gss`` cluster rows (CLI
    #: ``--workers``); 0 disables them.
    workers: int = 0
    #: Cluster data-plane transport (CLI ``--transport``): ``auto`` (shared
    #: memory when available, else pipes), ``shm``, or ``pipe``.
    transport: str = "auto"
    extras: dict = field(default_factory=dict)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Small configuration for tests: tiny datasets, single width."""
        return cls(
            datasets=("email-EuAll",),
            dataset_scale=0.05,
            width_factors=(1.0,),
            fingerprint_bits=(12,),
            sequence_length=4,
            candidate_buckets=4,
            query_sample=60,
            reachability_pairs=10,
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """Closer to the paper: all five datasets at full analog size."""
        return cls(
            datasets=PAPER_DATASETS,
            dataset_scale=1.0,
            width_factors=(0.7, 0.85, 1.0, 1.15, 1.3),
            query_sample=None,
            reachability_pairs=100,
            sequence_length=16,
            candidate_buckets=16,
            tcm_topology_memory_ratio=256.0,
        )

    # -- builders shared by the runners ------------------------------------

    def recommended_width(self, statistics: StreamStatistics) -> int:
        """Width such that the matrix holds about one room per distinct edge."""
        edges = max(1, statistics.distinct_edges)
        return max(4, int((edges / self.rooms) ** 0.5) + 1)

    def widths_for(self, statistics: StreamStatistics) -> List[int]:
        """The absolute width sweep for a dataset."""
        base = self.recommended_width(statistics)
        widths = sorted({max(4, int(base * factor)) for factor in self.width_factors})
        return widths

    def gss_spec(
        self,
        width: int,
        fingerprint_bits: int,
        rooms: int = None,
        square_hashing: bool = True,
        sampling: bool = True,
    ) -> SketchSpec:
        """The :class:`SketchSpec` of a GSS with this experiment's parameters."""
        return SketchSpec(
            "gss",
            backend=self.backend,
            seed=self.seed,
            params={
                "matrix_width": width,
                "fingerprint_bits": fingerprint_bits,
                "rooms": self.rooms if rooms is None else rooms,
                "sequence_length": self.sequence_length,
                "candidate_buckets": self.candidate_buckets,
                "square_hashing": square_hashing,
                "sampling": sampling,
            },
        )

    def build_gss(
        self,
        width: int,
        fingerprint_bits: int,
        rooms: int = None,
        square_hashing: bool = True,
        sampling: bool = True,
    ):
        """Build a GSS with this experiment's square-hashing parameters.

        The matrix backend follows ``self.backend`` (CLI ``--backend``), so
        every experiment runner compares structures on the same backend.
        """
        return build(
            self.gss_spec(
                width,
                fingerprint_bits,
                rooms=rooms,
                square_hashing=square_hashing,
                sampling=sampling,
            )
        )

    def build_tcm(self, reference, memory_ratio: float):
        """Build a TCM granted ``memory_ratio`` times the reference GSS memory.

        The "same memory handicap" rule of Section VII is expressed as a
        factory budget: the registry's TCM builder inverts the counter
        accounting, and the counter backend matches ``self.backend`` so
        Table I comparisons stay apples-to-apples.
        """
        return build(
            SketchSpec(
                "tcm",
                memory_bytes=int(
                    reference.config.matrix_memory_bytes() * memory_ratio
                ),
                backend=self.backend,
                seed=self.seed + 1,
                params={"depth": self.tcm_depth},
            )
        )

    def build_sketch(self, name: str, memory_bytes: int = None, expected_edges: int = None, **params):
        """Build any registered sketch through the factory.

        ``memory_bytes`` grants an explicit budget — the ``--sketch``
        comparison rows use the reference GSS's memory, the paper's
        comparison invariant; ``expected_edges`` sizes for a stream; explicit
        structure parameters go through ``params``.
        """
        return build(
            SketchSpec(
                name,
                memory_bytes=memory_bytes,
                expected_edges=expected_edges,
                backend=self.backend,
                seed=self.seed,
                params=params,
            )
        )

    def extra_sketches_with(self, capability: str) -> List[str]:
        """The ``extra_sketches`` entries supporting a capability flag.

        Raises ``ValueError`` when a requested sketch lacks the capability,
        so a CLI user asking for e.g. successor-precision rows of a CM sketch
        gets a clear error instead of a silent omission.  In lenient mode
        (``extras["sketch_rows_lenient"]``, set by multi-experiment CLI runs
        like ``all``/``extensions``) incompatible sketches are skipped
        instead, so one sketch can ride through every experiment that
        supports it.
        """
        names = []
        for name in self.extra_sketches:
            capabilities = sketch_info(name).capabilities
            if not getattr(capabilities, capability):
                if self.extras.get("sketch_rows_lenient"):
                    continue
                raise ValueError(
                    f"sketch {name!r} does not support {capability}; it cannot "
                    "appear in this experiment"
                )
            names.append(name)
        return names

    def feed(self, store, stream):
        """Feed a stream through the :class:`StreamSession` facade; returns
        ``store`` for chaining (the session handles batching and windowed
        timestamp routing uniformly for every structure)."""
        StreamSession(
            store, batch_size=self.extras.get("batch_size", 1024)
        ).feed(stream)
        return store

    def sample_items(self, items: Sequence, limit: int = None) -> List:
        """Deterministically subsample a query set to ``query_sample`` items."""
        cap = self.query_sample if limit is None else limit
        items = list(items)
        if cap is None or len(items) <= cap:
            return items
        step = len(items) / cap
        return [items[int(position * step)] for position in range(cap)]


def load_streams(config: ExperimentConfig) -> List[Tuple[str, GraphStream]]:
    """Load every dataset analog selected by ``config``."""
    from repro.datasets.registry import load_dataset

    return [
        (name, load_dataset(name, scale=config.dataset_scale))
        for name in config.datasets
    ]
