"""Figure 14 — triangle counting: GSS vs TRIEST with equal memory.

The paper runs triangle counting on cit-HepPh, giving GSS and TRIEST the same
memory budget and sweeping that budget; both achieve relative error below 1%.
The runner de-duplicates the edge stream (TRIEST does not support
multi-edges), counts the exact triangle number on the de-duplicated undirected
graph, and reports the relative error of both estimators across the memory
sweep.
"""

from __future__ import annotations

from repro.exact.adjacency_list import AdjacencyListGraph
from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.queries.primitives import consume_stream
from repro.queries.triangle import count_triangles


def run_triangle_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Reproduce Figure 14: relative triangle-count error, GSS vs TRIEST."""
    config = config or ExperimentConfig()
    datasets = config.extras.get("triangle_datasets", ("cit-HepPh",))
    memory_factors = config.extras.get("triangle_memory_factors", (0.6, 1.0, 1.4))
    fingerprint_bits = max(config.fingerprint_bits)

    result = ExperimentResult(
        experiment="fig14",
        description="triangle count relative error at equal memory (GSS vs TRIEST)",
        columns=["dataset", "memory_bytes", "structure", "estimate", "truth", "relative_error"],
    )

    triangle_config = ExperimentConfig(
        datasets=datasets,
        dataset_scale=config.dataset_scale,
        width_factors=config.width_factors,
        fingerprint_bits=config.fingerprint_bits,
        sequence_length=config.sequence_length,
        candidate_buckets=config.candidate_buckets,
        rooms=config.rooms,
        seed=config.seed,
    )

    for name, stream in load_streams(triangle_config):
        unique = stream.unique_edges()
        nodes = unique.nodes()
        exact = consume_stream(AdjacencyListGraph(), unique)
        truth = count_triangles(exact, nodes)
        if truth == 0:
            continue
        statistics = unique.statistics()
        base_width = config.recommended_width(statistics)
        for factor in memory_factors:
            width = max(4, int(base_width * factor))
            sketch = config.feed(config.build_gss(width, fingerprint_bits), unique)
            memory = sketch.memory_bytes()
            gss_estimate = count_triangles(sketch, nodes)

            # TRIEST rides through the registry at the same memory budget
            # (one reservoir slot per 16 bytes), the paper's Figure 14 setup.
            triest = config.feed(
                config.build_sketch("triest-impr", memory_bytes=memory), unique
            )
            triest_estimate = triest.triangle_estimate()

            for label, estimate in (("GSS", gss_estimate), ("TRIEST", triest_estimate)):
                result.add(
                    dataset=name,
                    memory_bytes=memory,
                    structure=label,
                    estimate=float(estimate),
                    truth=float(truth),
                    relative_error=abs(estimate - truth) / truth,
                )
    return result
