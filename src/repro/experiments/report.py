"""Result container and plain-text table formatting for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render result rows as an aligned plain-text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Floats are shown with 4 significant decimals.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in table))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        for line in table
    ]
    return "\n".join([header, separator, *body])


@dataclass
class ExperimentResult:
    """Rows produced by one experiment runner, plus its identity."""

    experiment: str
    description: str
    rows: List[Dict] = field(default_factory=list)
    columns: Optional[List[str]] = None

    def add(self, **row) -> None:
        """Append one result row."""
        self.rows.append(row)

    def filter(self, **criteria) -> List[Dict]:
        """Rows matching every keyword criterion exactly."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    def column(self, name: str, **criteria) -> List:
        """Values of one column, optionally filtered."""
        return [row[name] for row in self.filter(**criteria) if name in row]

    def to_text(self) -> str:
        """Human-readable report: header line plus the aligned table."""
        header = f"== {self.experiment}: {self.description} =="
        return header + "\n" + format_table(self.rows, self.columns)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
