#!/usr/bin/env python
"""CI smoke for the ``repro.cluster`` subsystem.

Exercises the full production story on a small dataset, end to end:

1. build a 2-worker ``sharded-gss`` cluster through the ``repro.api`` factory
   and ingest the first half of the stream via :class:`StreamSession`;
2. checkpoint the cluster to disk and **hard-kill** the worker processes
   (crash simulation — no graceful flush after the checkpoint);
3. restore the cluster from the checkpoint, ingest the second half;
4. verify the resumed cluster answers every edge/successor/precursor/node
   query identically to an equivalently-sharded single-process
   ``PartitionedGSS`` that saw the whole stream uninterrupted.

Exits non-zero (with a message) on any mismatch.  Runs in seconds.

Usage::

    PYTHONPATH=src python scripts/cluster_smoke.py [--workers 2] [--scale 0.05] \
        [--transport auto|shm|pipe]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import SketchSpec, StreamSession, build  # noqa: E402
from repro.cluster import load_checkpoint, save_checkpoint  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--dataset", default="email-EuAll")
    parser.add_argument("--transport", choices=["auto", "shm", "pipe"], default="auto",
                        help="cluster data-plane transport (default auto)")
    args = parser.parse_args(argv)

    stream = load_dataset(args.dataset, scale=args.scale)
    edges = list(stream)
    half = len(edges) // 2
    statistics = stream.statistics()
    expected = max(1, statistics.distinct_edges)
    print(
        f"dataset={args.dataset} scale={args.scale}: {len(edges)} items, "
        f"{expected} distinct edges, workers={args.workers}"
    )

    # The reference: a single-process partitioned deployment with the same
    # shard count, shard configuration and routing seed, fed uninterrupted.
    reference = build(
        SketchSpec(
            "partitioned-gss",
            expected_edges=expected,
            params={"partitions": args.workers},
        )
    )
    StreamSession(reference).feed(edges)
    shard_config = reference.config

    cluster_spec = SketchSpec(
        "sharded-gss",
        params={
            "workers": args.workers,
            "transport": args.transport,
            "matrix_width": shard_config.matrix_width,
            "fingerprint_bits": shard_config.fingerprint_bits,
            "rooms": shard_config.rooms,
            "sequence_length": shard_config.sequence_length,
            "candidate_buckets": shard_config.candidate_buckets,
        },
    )
    cluster = build(cluster_spec)
    print(f"transport: requested={args.transport} effective={cluster.transport}")
    first_report = StreamSession(cluster).feed(edges[:half])
    print(
        f"ingested first half: {first_report.items} items, "
        f"shard_items={first_report.shard_items}, "
        f"queue_high_water={first_report.queue_depth_high_water}"
    )

    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as directory:
        manifest = save_checkpoint(cluster, directory)
        print(f"checkpointed to {manifest}")
        cluster.kill()  # crash simulation: no graceful shutdown
        print("killed worker processes; restoring from checkpoint")
        restored = load_checkpoint(directory)

    second_report = StreamSession(restored).feed(edges[half:])
    print(f"resumed second half: {second_report.items} items")
    if restored.update_count != len(edges):
        print(
            f"FAIL: resumed update_count {restored.update_count} != {len(edges)}"
        )
        return 1

    truth = stream.aggregate_weights()
    mismatches = 0
    for (source, destination), _ in list(truth.items())[:500]:
        if restored.edge_query(source, destination) != reference.edge_query(
            source, destination
        ):
            mismatches += 1
    nodes = stream.nodes()[:200]
    for node in nodes:
        if restored.successor_query(node) != reference.successor_query(node):
            mismatches += 1
        if restored.precursor_query(node) != reference.precursor_query(node):
            mismatches += 1
        if restored.node_in_weight(node) != reference.node_in_weight(node):
            mismatches += 1
    restored.close()
    if mismatches:
        print(f"FAIL: {mismatches} answers differ from the uninterrupted reference")
        return 1
    print(
        f"OK: checkpoint/kill/restore/resume matches the uninterrupted "
        f"reference on {len(truth)} edges and {len(nodes)} nodes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
