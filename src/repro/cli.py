"""Command-line front-end: ``python -m repro <experiment>``.

Each sub-command regenerates one table or figure of the paper and prints the
result rows as an aligned text table.  ``--scale`` controls the synthetic
dataset size, ``--paper-scale`` switches to the full configuration (all five
datasets, full query sets), ``--quick`` runs the tiny smoke configuration,
``--backend`` selects the sketch matrix backend, ``--sketch NAME`` (repeatable)
adds equal-memory comparison rows for any registered sketch, ``--workers N``
adds a multi-process ``sharded-gss`` cluster row to tab1 (``--transport``
picks its data plane: shared-memory rings or pipes), and ``--json PATH``
writes the result rows as a machine-readable document (the perf-trajectory
format consumed by ``scripts/record_bench.py``).

``sketches`` is not an experiment: it lists the registry — every sketch the
``repro.api`` factory can build, with its capabilities.

``serve`` is not an experiment either: ``python -m repro serve --workers 2
--port 8750`` builds a ``sharded-gss`` cluster and runs the
:mod:`repro.serve` network front end over it in the foreground until
SIGINT/SIGTERM (draining in-flight batches and, with ``--checkpoint-dir``,
checkpointing before exit).  It has its own flag set — see
``python -m repro serve --help``.

``obs`` inspects :mod:`repro.obs` telemetry: ``python -m repro obs --port
8750`` scrapes a running server's ``/metrics`` and pretty-prints the
instrument snapshot (counters, gauges, latency histograms with p50/p99
estimates); ``--file`` reads a dumped document instead, and
``--check-prometheus PATH|-`` validates a Prometheus text exposition (the
CI serve smoke leg pipes ``curl -H 'Accept: text/plain'`` through it).

Every sketch the runners construct goes through :func:`repro.api.build`; the
CLI never instantiates a summary class directly.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.api import list_sketches, sketch_info
from repro.experiments import (
    ExperimentConfig,
    run_algorithm_agreement_experiment,
    run_buffer_experiment,
    run_candidate_ablation,
    run_edge_query_experiment,
    run_figure3,
    run_fingerprint_ablation,
    run_heavy_changer_experiment,
    run_memory_experiment,
    run_node_query_experiment,
    run_partition_experiment,
    run_precursor_experiment,
    run_reachability_experiment,
    run_rooms_ablation,
    run_sequence_length_ablation,
    run_subgraph_experiment,
    run_successor_experiment,
    run_triangle_experiment,
    run_update_speed_experiment,
    run_window_experiment,
)

#: Paper artifacts (tables and figures).
_PAPER_RUNNERS: Dict[str, Callable] = {
    "fig3": run_figure3,
    "fig8": run_edge_query_experiment,
    "fig9": run_precursor_experiment,
    "fig10": run_successor_experiment,
    "fig11": run_node_query_experiment,
    "fig12": run_reachability_experiment,
    "fig13": run_buffer_experiment,
    "tab1": run_update_speed_experiment,
    "fig14": run_triangle_experiment,
    "fig15": run_subgraph_experiment,
}

#: Extension studies (ablations and deployment wrappers); run with their name
#: or with the ``extensions`` pseudo-experiment.
_EXTENSION_RUNNERS: Dict[str, Callable] = {
    "ablation-fingerprint": run_fingerprint_ablation,
    "ablation-sequence": run_sequence_length_ablation,
    "ablation-candidates": run_candidate_ablation,
    "ablation-rooms": run_rooms_ablation,
    "window": run_window_experiment,
    "partition": run_partition_experiment,
    "changers": run_heavy_changer_experiment,
    "algorithms": run_algorithm_agreement_experiment,
    "memory": run_memory_experiment,
}

_RUNNERS: Dict[str, Callable] = {**_PAPER_RUNNERS, **_EXTENSION_RUNNERS}

#: Experiments that grow equal-memory comparison rows for ``--sketch``.
_SKETCH_ROW_RUNNERS = frozenset({"fig8", "fig9", "fig10", "fig11", "fig12", "tab1"})


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-gss",
        description="Reproduce the tables and figures of 'Fast and Accurate "
        "Graph Stream Summarization' (GSS, ICDE 2019).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(list(_RUNNERS) + ["all", "extensions", "sketches"]),
        help=(
            "which table/figure to regenerate; 'all' runs every paper artifact, "
            "'extensions' runs the ablation and deployment studies, 'sketches' "
            "lists every registered summary structure and its capabilities "
            "(also: 'serve' runs the network front end — "
            "see 'python -m repro serve --help')"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale factor (default from the chosen configuration)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        help="restrict to these dataset analogs (default: configuration's set)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny smoke-test configuration"
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "chunk size for the batched update_many ingestion measured by "
            "tab1 (default 1024)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "add a multi-process sharded-gss cluster row with N worker "
            "processes to tab1 (equal memory to the reference GSS; see the "
            "repro.cluster subsystem)"
        ),
    )
    parser.add_argument(
        "--transport",
        choices=["auto", "shm", "pipe"],
        default=None,
        help=(
            "data-plane transport of the sharded-gss cluster rows: 'shm' "
            "(shared-memory rings), 'pipe' (pickled batches) or 'auto' "
            "(default: shm when NumPy and shared memory are available)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["python", "numpy", "native", "auto"],
        default="python",
        help=(
            "matrix backend for GSS and the TCM counters: 'python' (zero "
            "dependencies, default), 'numpy' (vectorized), 'native' "
            "(compiled placement kernel; counters use numpy) or 'auto' "
            "(fastest available).  Missing prerequisites fall back down "
            "the chain with a warning"
        ),
    )
    parser.add_argument(
        "--sketch",
        action="append",
        # Only sketches constructible from a bare memory budget qualify —
        # e.g. windowed-gss needs a window span no experiment can infer.
        choices=[
            name for name in list_sketches() if not sketch_info(name).required_params
        ],
        default=None,
        metavar="NAME",
        help=(
            "add equal-memory comparison rows for this registered sketch to "
            "the experiments that support it (repeatable; see 'sketches' for "
            "the registry)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result rows as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="full configuration: all five datasets, full query sets",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Translate parsed CLI arguments into an :class:`ExperimentConfig`."""
    if args.quick and args.paper_scale:
        raise SystemExit("--quick and --paper-scale are mutually exclusive")
    if args.quick:
        config = ExperimentConfig.quick()
    elif args.paper_scale:
        config = ExperimentConfig.paper_scale()
    else:
        config = ExperimentConfig()
    if args.scale is not None:
        config.dataset_scale = args.scale
    if args.datasets is not None:
        config.datasets = tuple(args.datasets)
    if args.batch_size is not None:
        if args.batch_size < 1:
            raise SystemExit("--batch-size must be at least 1")
        config.extras["batch_size"] = args.batch_size
    if getattr(args, "workers", None) is not None:
        if args.workers < 1:
            raise SystemExit("--workers must be at least 1")
        config.workers = args.workers
    if getattr(args, "transport", None) is not None:
        config.transport = args.transport
    if getattr(args, "backend", None):
        config.backend = args.backend
    if getattr(args, "sketch", None):
        config.extra_sketches = tuple(args.sketch)
    return config


def results_to_document(results: List, config: ExperimentConfig) -> Dict:
    """Bundle experiment results as a JSON-compatible perf document.

    The shape is what ``scripts/record_bench.py`` appends to the
    ``BENCH_*.json`` trajectory: run metadata (backend, scale, interpreter)
    plus the raw rows of every experiment, so later sessions can diff
    throughput numbers without re-parsing text tables.  ``backend`` is the
    backend that actually ran (``auto`` and unavailable-NumPy fallbacks
    resolved); the raw request is kept in ``backend_requested``.
    """
    import warnings

    from repro.core.backends import resolve_backend_name

    with warnings.catch_warnings():
        # The fallback warning (if any) already fired when the sketches were
        # built; resolving again for metadata should stay silent.
        warnings.simplefilter("ignore")
        resolved_backend = resolve_backend_name(config.backend)
    return {
        "format": "repro-gss-bench",
        "format_version": 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "backend": resolved_backend,
        "backend_requested": config.backend,
        "dataset_scale": config.dataset_scale,
        "datasets": list(config.datasets),
        "batch_size": config.extras.get("batch_size", 1024),
        "workers": config.workers,
        "transport": config.transport,
        "experiments": [
            {
                "experiment": result.experiment,
                "description": result.description,
                "columns": result.columns,
                "rows": result.rows,
            }
            for result in results
        ],
    }


def sketch_registry_rows() -> List[Dict]:
    """One row per registered sketch: name, description, capability summary."""
    rows = []
    for name in list_sketches():
        info = sketch_info(name)
        rows.append(
            {
                "sketch": name,
                "description": info.description,
                "capabilities": ",".join(info.capabilities.supported()),
                "params": ",".join(info.param_names) or "-",
            }
        )
    return rows


def _write_json(document: Dict, target: str) -> None:
    """Dump a result document to ``target`` (``-`` for stdout)."""
    if target == "-":
        json.dump(document, sys.stdout, indent=2)
        print()
    else:
        path = Path(target)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote JSON results to {path}")


def _run_sketches_listing(args: argparse.Namespace) -> int:
    """The ``sketches`` sub-command: print (and optionally dump) the registry."""
    from repro.experiments.report import format_table

    rows = sketch_registry_rows()
    print("== sketches: the repro.api registry ==")
    print(format_table(rows, ["sketch", "description", "capabilities", "params"]))
    if args.json is not None:
        _write_json({"format": "repro-gss-sketches", "sketches": rows}, args.json)
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``serve`` sub-command's own parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-gss serve",
        description="Run the repro.serve network front end over a sharded-gss "
        "cluster: concurrent ingest feeds and query clients over TCP, with "
        "credit-window backpressure and GET /metrics on the same port.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default loopback; the protocol "
                             "trusts its network — keep it private)")
    parser.add_argument("--port", type=int, default=8750,
                        help="TCP port (0 picks a free one; default 8750)")
    parser.add_argument("--workers", type=int, default=2,
                        help="cluster worker processes (default 2)")
    parser.add_argument("--transport", choices=["auto", "shm", "pipe"],
                        default="auto", help="cluster data-plane transport")
    parser.add_argument("--backend", choices=["python", "numpy", "native", "auto"],
                        default="python", help="matrix backend of the shards")
    sizing = parser.add_mutually_exclusive_group()
    sizing.add_argument("--expected-edges", type=int, default=None,
                        help="size the summary for this many distinct edges "
                             "(default 100000)")
    sizing.add_argument("--memory-bytes", type=int, default=None,
                        help="size the summary to this memory budget instead")
    parser.add_argument("--credits", type=int, default=8,
                        help="per-connection ingest credit window (default 8)")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="global cap on admitted-but-unapplied batches")
    parser.add_argument("--retry-after", type=float, default=0.05,
                        help="backoff hint carried by busy replies (seconds)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="checkpoint here on shutdown (and on the "
                             "protocol's checkpoint op)")
    parser.add_argument("--restore", action="store_true",
                        help="restore the cluster from --checkpoint-dir "
                             "before serving")
    parser.add_argument("--no-obs", action="store_true",
                        help="disable cluster telemetry (the obs key on "
                             "/metrics and the Prometheus exposition)")
    return parser


def _run_serve(argv: List[str]) -> int:
    """The ``serve`` sub-command: foreground server until SIGINT/SIGTERM."""
    import asyncio

    from repro.api import SketchSpec, build
    from repro.serve.server import ServeConfig, SummaryServer

    args = build_serve_parser().parse_args(argv)
    if args.restore and args.checkpoint_dir is None:
        raise SystemExit("--restore needs --checkpoint-dir")
    if args.restore:
        from repro.cluster import load_checkpoint

        summary = load_checkpoint(args.checkpoint_dir, backend=args.backend)
        print(f"restored {summary.workers}-worker cluster from "
              f"{args.checkpoint_dir} ({summary.update_count} items)")
    else:
        spec = SketchSpec(
            "sharded-gss",
            expected_edges=(
                args.expected_edges
                if args.expected_edges is not None or args.memory_bytes is not None
                else 100_000
            ),
            memory_bytes=args.memory_bytes,
            backend=args.backend,
            params={"workers": args.workers, "transport": args.transport},
        )
        summary = build(spec)
    server = SummaryServer(
        summary,
        ServeConfig(
            host=args.host,
            port=args.port,
            credits=args.credits,
            max_inflight=args.max_inflight,
            retry_after=args.retry_after,
            checkpoint_dir=args.checkpoint_dir,
            obs=not args.no_obs,
        ),
    )

    async def _serve() -> None:
        await server.start()
        server.install_signal_handlers()
        print(
            f"serving on {server.host}:{server.port} "
            f"(workers={summary.workers} transport={summary.transport} "
            f"credits={args.credits} max_inflight={args.max_inflight}); "
            f"GET /metrics on the same port; Ctrl-C drains and exits",
            flush=True,
        )
        await server.wait_stopped()

    asyncio.run(_serve())
    print("server stopped")
    return 0


def build_obs_parser() -> argparse.ArgumentParser:
    """The ``obs`` sub-command's own parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-gss obs",
        description="Inspect repro.obs telemetry: pretty-print the instrument "
        "snapshot of a running server (or of a dumped /metrics document), or "
        "validate a Prometheus text exposition.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="server to scrape (default loopback)")
    parser.add_argument("--port", type=int, default=8750,
                        help="server port (default 8750, the serve default)")
    parser.add_argument("--file", default=None, metavar="PATH",
                        help="read a JSON document from PATH instead of "
                             "scraping a server (either a full /metrics "
                             "document or a bare obs snapshot)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also dump the raw snapshot as JSON to PATH "
                             "('-' prints to stdout)")
    parser.add_argument("--check-prometheus", default=None, metavar="PATH",
                        help="parse and validate a Prometheus text exposition "
                             "read from PATH ('-' reads stdin), then exit; "
                             "non-zero exit on malformed input")
    return parser


def _run_obs(argv: List[str]) -> int:
    """The ``obs`` sub-command: pretty-print or validate telemetry."""
    from repro.obs.export import describe_snapshot, validate_prometheus

    args = build_obs_parser().parse_args(argv)
    if args.check_prometheus is not None:
        if args.check_prometheus == "-":
            text = sys.stdin.read()
        else:
            text = Path(args.check_prometheus).read_text(encoding="utf-8")
        try:
            families = validate_prometheus(text)
        except ValueError as error:
            print(f"invalid prometheus exposition: {error}", file=sys.stderr)
            return 1
        print(f"prometheus exposition OK: {len(families)} families")
        return 0
    if args.file is not None:
        document = json.loads(Path(args.file).read_text(encoding="utf-8"))
    else:
        from repro.serve.client import fetch_http_metrics

        document = fetch_http_metrics(args.host, args.port)
    # Accept both shapes: a full /metrics document carrying an "obs" key,
    # or a bare registry snapshot dumped by some other tool.
    snapshot = document.get("obs") if "families" not in document else document
    if not snapshot or "families" not in snapshot:
        print(
            "no obs snapshot in the document (server running with "
            "obs disabled?)",
            file=sys.stderr,
        )
        return 1
    if args.json is not None:
        _write_json(snapshot, args.json)
    print(describe_snapshot(snapshot))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro-gss`` script."""
    raw_argv = sys.argv[1:] if argv is None else list(argv)
    if raw_argv and raw_argv[0] == "serve":
        return _run_serve(raw_argv[1:])
    if raw_argv and raw_argv[0] == "obs":
        return _run_obs(raw_argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "sketches":
        return _run_sketches_listing(args)
    config = config_from_args(args)

    if args.experiment == "all":
        names = sorted(_PAPER_RUNNERS)
    elif args.experiment == "extensions":
        names = sorted(_EXTENSION_RUNNERS)
    else:
        names = [args.experiment]
    if len(names) > 1:
        # In multi-experiment runs a --sketch rides through the experiments
        # that support it and is skipped elsewhere, as the help promises; a
        # single-experiment run errors on an unsupported combination.
        config.extras["sketch_rows_lenient"] = True
    elif config.extra_sketches and names[0] not in _SKETCH_ROW_RUNNERS:
        raise SystemExit(
            f"error: experiment {names[0]!r} has no --sketch comparison rows; "
            f"supported: {', '.join(sorted(_SKETCH_ROW_RUNNERS))}"
        )
    results = []
    for name in names:
        try:
            result = _RUNNERS[name](config)
        except ValueError as error:
            raise SystemExit(f"error: {error}") from error
        results.append(result)
        print(result.to_text())
        print()
    if args.json is not None:
        _write_json(results_to_document(results, config), args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
