"""Sharding a graph stream over partitioned GSS sketches (distributed style).

Run with::

    python examples/distributed_partition.py

The paper notes that GSS "can also be used in existing distributed graph
systems" (GraphX, PowerGraph, Pregel).  This example simulates that
deployment on one machine:

* the web-NotreDame analog stream is routed to 4 source-partitioned shards,
  each an independent GSS that a separate worker could own;
* queries are answered through the sharded interface (edge and successor
  queries touch a single shard, precursor queries fan out);
* the shards are finally merged back into one summary for a central analyser,
  and the merged answers are checked against a monolithic sketch that saw the
  whole stream.
"""

from __future__ import annotations

from repro import GSS, GSSConfig, AdjacencyListGraph
from repro.core.partitioned import PartitionedGSS
from repro.datasets import load_dataset
from repro.metrics import average_precision
from repro.queries.primitives import consume_stream


def main() -> None:
    stream = load_dataset("web-NotreDame", scale=0.2)
    statistics = stream.statistics()
    print(f"stream '{stream.name}': {statistics.item_count} items, "
          f"{statistics.distinct_edges} distinct edges, {statistics.node_count} nodes")

    # 1. Shard the stream over 4 workers with the same total capacity a
    #    monolithic sketch would get.
    sharded = PartitionedGSS.for_total_capacity(
        statistics.distinct_edges,
        partitions=4,
        sequence_length=8,
        candidate_buckets=8,
    )
    sharded.ingest(stream)
    print(f"4 shards of width {sharded.config.matrix_width}, "
          f"total memory {sharded.memory_bytes() / 1024:.1f} KiB")
    print(f"shard loads (sketch edges): {sharded.shard_loads()}, "
          f"imbalance {sharded.load_imbalance():.2f}x")

    # 2. Query through the sharded interface and compare against ground truth.
    exact = consume_stream(AdjacencyListGraph(), stream)
    sample_nodes = stream.nodes()[:300]
    pairs = [
        (exact.successor_query(node), sharded.successor_query(node)) for node in sample_nodes
    ]
    print(f"1-hop successor precision over {len(sample_nodes)} nodes: "
          f"{average_precision(pairs):.4f}")

    # 3. Collapse the shards into a single summary for central analysis.
    merged = sharded.merge_into_single()
    monolithic_config = GSSConfig.for_edge_count(
        statistics.distinct_edges, sequence_length=8, candidate_buckets=8
    )
    monolithic = GSS(monolithic_config).ingest(stream)
    agreement = 0
    checked = 0
    for source, destination in stream.distinct_edge_keys()[:500]:
        checked += 1
        merged_estimate = merged.edge_query(source, destination) or 0.0
        if merged_estimate >= (monolithic.edge_query(source, destination) or 0.0):
            agreement += 1
    print(f"merged-vs-monolithic edge estimates: {agreement}/{checked} merged answers "
          f"cover the monolithic estimate")


if __name__ == "__main__":
    main()
