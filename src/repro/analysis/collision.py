"""Collision-rate analysis of the graph-sketch mapping (Section VI-B/C).

The only source of error in GSS is the map from the streaming graph ``G`` to
the graph sketch ``Gh`` (Theorem 1: the storage of ``Gh`` itself is exact).
For a queried edge ``e`` with ``D`` adjacent edges among the ``|E|`` edges of
``G`` and a node hash of range ``M``, the probability that no other edge
collides with ``e`` is

    P = exp(-(|E| - D) / M^2) * exp(-D / M)
      = exp(-(|E| + (M - 1) * D) / M^2)                       (Equation 12)

which is the correct rate of the edge query.  The 1-hop successor (precursor)
query for a node of out-degree (in-degree) ``d`` is correct when none of the
other ``|V| - d`` nodes collides with any relevant edge, giving ``P ** (|V| - d)``
with the appropriate per-node collision probability.

TCM obeys exactly the same formulas with ``M`` equal to the matrix width,
which is how the paper quantifies the accuracy gap (Section VI-C example).
"""

from __future__ import annotations

import math


def _validate(M: float, edges: float) -> None:
    if M <= 0:
        raise ValueError("hash range M must be positive")
    if edges < 0:
        raise ValueError("edge count must be non-negative")


def edge_collision_probability(M: float, edges: float, adjacent_edges: float = 0.0) -> float:
    """``P_hat`` — probability that at least one other edge collides with the query edge.

    Parameters mirror Equation 12: ``M`` is the hash range, ``edges`` is
    ``|E|`` and ``adjacent_edges`` is ``D`` (edges sharing an endpoint with the
    queried edge).
    """
    return 1.0 - edge_query_correct_rate(M, edges, adjacent_edges)


def edge_query_correct_rate(M: float, edges: float, adjacent_edges: float = 0.0) -> float:
    """``P`` of Equation 12 — probability the edge query returns the exact weight."""
    _validate(M, edges)
    if adjacent_edges < 0 or adjacent_edges > edges:
        raise ValueError("adjacent_edges must be between 0 and edges")
    exponent = (edges - adjacent_edges) / (M * M) + adjacent_edges / M
    return math.exp(-exponent)


def node_collision_free_probability(M: float, nodes: float) -> float:
    """Probability a node does not share its hash with any of the other nodes.

    ``(1 - 1/M) ** (|V| - 1) ~= exp(-(|V| - 1) / M)`` — the quantity Section IV
    uses to motivate a large ``M``.
    """
    _validate(M, nodes)
    if nodes < 1:
        return 1.0
    return math.exp(-(nodes - 1) / M)


def successor_query_correct_rate(
    M: float, nodes: float, edges: float, out_degree: float = 1.0
) -> float:
    """Correct rate of a 1-hop successor query (Section VI-B).

    The answer is correct iff for every node ``v'`` that is *not* a successor
    (there are ``|V| - d_out`` of them) the edge ``(v, v')`` does not collide
    with any existing edge.  Each such potential edge has ``D ~ d_out``
    adjacent edges through the queried node, so its non-collision probability
    is the edge-query correct rate with that ``D``.
    """
    _validate(M, nodes)
    non_successors = max(0.0, nodes - out_degree)
    per_edge = edge_query_correct_rate(M, edges, min(out_degree, edges))
    return per_edge ** non_successors


def precursor_query_correct_rate(
    M: float, nodes: float, edges: float, in_degree: float = 1.0
) -> float:
    """Correct rate of a 1-hop precursor query (symmetric to the successor case)."""
    return successor_query_correct_rate(M, nodes, edges, out_degree=in_degree)


def gss_hash_range(matrix_width: int, fingerprint_bits: int) -> int:
    """``M = m * F`` for a GSS configuration."""
    if matrix_width <= 0:
        raise ValueError("matrix_width must be positive")
    if fingerprint_bits <= 0:
        raise ValueError("fingerprint_bits must be positive")
    return matrix_width * (1 << fingerprint_bits)


def tcm_hash_range(matrix_width: int) -> int:
    """``M = m`` for TCM — the whole reason its accuracy is limited."""
    if matrix_width <= 0:
        raise ValueError("matrix_width must be positive")
    return matrix_width
