"""The :mod:`repro.obs` telemetry stack: registry math, tracing, exposition.

Covers the contracts the rest of the repo builds on:

* histogram bucket placement and quantile estimation on the fixed
  log-scale bounds;
* snapshot algebra — merge associativity/commutativity (the property that
  makes ``worker ⊕ worker ⊕ parent`` order-free), subtraction deltas, and
  the kind/bucket mismatch errors;
* the cardinality guard (overflow collapse instead of unbounded growth);
* the disabled-mode overhead guard: ``span()`` with telemetry off returns
  one shared singleton — no allocation on the hot path;
* Prometheus exposition: render → parse → validate round trip, and the
  validator catching broken documents;
* the serve layer: legacy JSON ``/metrics`` keys unchanged, the additive
  ``obs`` snapshot, content-negotiated Prometheus text, and server-side
  per-op histograms whose ``count`` equals the client's query count;
* the cluster: worker registries merged into :meth:`obs_snapshot`;
* the ``python -m repro obs`` CLI on dump files and Prometheus input;
* the ingest-profile and session forwarding paths.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import trace
from repro.obs.export import (
    describe_snapshot,
    parse_prometheus,
    render_prometheus,
    validate_prometheus,
)
from repro.obs.registry import (
    DEFAULT_MAX_SERIES,
    LATENCY_BUCKETS,
    MetricsRegistry,
    OVERFLOW_LABEL,
    histogram_quantile,
    merge_snapshots,
    subtract_snapshots,
)


class TestHistogramBuckets:
    def test_bucket_placement_on_log_scale_bounds(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "test")
        # Exactly on a bound lands in that bound's bucket (le semantics),
        # just above it lands in the next one.
        histogram.observe(LATENCY_BUCKETS[0])
        histogram.observe(LATENCY_BUCKETS[0] * 1.0001)
        histogram.observe(0.0)  # below the first bound
        assert histogram.counts[0] == 2
        assert histogram.counts[1] == 1
        assert histogram.count == 3

    def test_overflow_lands_in_trailing_slot(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "test")
        histogram.observe(LATENCY_BUCKETS[-1] * 10)
        assert histogram.counts[-1] == 1
        assert len(histogram.counts) == len(LATENCY_BUCKETS) + 1

    def test_quantile_interpolates_and_clamps(self):
        bounds = (1.0, 2.0, 4.0)
        # 10 observations in (1, 2]: p50 interpolates inside that bucket.
        counts = [0, 10, 0, 0]
        p50 = histogram_quantile(bounds, counts, 0.50)
        assert 1.0 < p50 <= 2.0
        # Overflow-only data clamps to the last finite bound.
        assert histogram_quantile(bounds, [0, 0, 0, 5], 0.99) == 4.0
        assert histogram_quantile(bounds, [0, 0, 0, 0], 0.5) is None
        with pytest.raises(ValueError):
            histogram_quantile(bounds, counts, 1.5)

    def test_instrument_quantile_matches_free_function(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "test")
        for value in (0.001, 0.002, 0.004, 0.008):
            histogram.observe(value)
        assert histogram.quantile(0.5) == histogram_quantile(
            histogram.bounds, histogram.counts, 0.5
        )


def _loaded_registry(scale: int = 1) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("items_total", "items", shard=0).inc(10 * scale)
    registry.counter("items_total", "items", shard=1).inc(20 * scale)
    registry.gauge("depth", "queue depth", shard=0).set(3 * scale)
    histogram = registry.histogram("lat", "latency", op="q")
    for _ in range(5 * scale):
        histogram.observe(0.0009765625)  # 2**-10: exact in binary, so sums
    return registry  # are associative and snapshot equality is well-defined


class TestSnapshotAlgebra:
    def test_merge_adds_counters_and_histograms_takes_gauge_max(self):
        a = _loaded_registry(1).snapshot()
        b = _loaded_registry(3).snapshot()
        merged = merge_snapshots(a, b)
        families = merged["families"]
        assert families["items_total"]["series"]["shard=0"]["value"] == 40
        assert families["depth"]["series"]["shard=0"]["value"] == 9  # max
        assert families["lat"]["series"]["op=q"]["count"] == 20

    def test_merge_is_associative_and_commutative(self):
        a = _loaded_registry(1).snapshot()
        b = _loaded_registry(2).snapshot()
        c = _loaded_registry(5).snapshot()
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        swapped = merge_snapshots(c, a, b)
        assert left == right == swapped

    def test_merge_skips_none_and_rejects_kind_mismatch(self):
        a = _loaded_registry().snapshot()
        assert merge_snapshots(None, a, None) == merge_snapshots(a)
        conflicting = MetricsRegistry()
        conflicting.gauge("items_total", "now a gauge").set(1)
        with pytest.raises(ValueError):
            merge_snapshots(a, conflicting.snapshot())

    def test_subtract_yields_the_delta_and_clamps(self):
        before = _loaded_registry(1).snapshot()
        after = _loaded_registry(3).snapshot()
        delta = subtract_snapshots(after, before)
        families = delta["families"]
        assert families["items_total"]["series"]["shard=0"]["value"] == 20
        assert families["lat"]["series"]["op=q"]["count"] == 10
        # Gauges keep the "after" level.
        assert families["depth"]["series"]["shard=0"]["value"] == 9
        # Reversed operands clamp at zero instead of going negative.
        clamped = subtract_snapshots(before, after)
        assert clamped["families"]["items_total"]["series"]["shard=0"]["value"] == 0


class TestCardinalityGuard:
    def test_overflow_label_sets_collapse(self):
        registry = MetricsRegistry(max_series=4)
        for index in range(10):
            registry.counter("c", "test", node=index).inc()
        snapshot = registry.snapshot()["families"]["c"]
        assert len(snapshot["series"]) == 5  # 4 real + 1 overflow
        assert snapshot["dropped_series"] == 6
        overflow_key = f"node={OVERFLOW_LABEL}"
        assert snapshot["series"][overflow_key]["value"] == 6

    def test_default_bound_is_generous_but_finite(self):
        assert DEFAULT_MAX_SERIES == 256


class TestTraceSwitch:
    def test_disabled_span_is_one_shared_singleton(self):
        # The disabled-mode overhead guard: no span objects are allocated
        # when telemetry is off — every call returns the same object.
        with trace.scoped(off=True):
            first = trace.span("a", shard=1)
            second = trace.span("b")
            assert first is second
            with first:
                pass  # no-op context manager

    def test_enabled_span_records_into_the_family(self):
        with trace.scoped() as registry:
            with trace.span("unit.test", shard=7):
                pass
            snapshot = registry.snapshot()
        series = snapshot["families"][trace.SPAN_FAMILY]["series"]
        (entry,) = [
            s for s in series.values() if s["labels"].get("span") == "unit.test"
        ]
        assert entry["count"] == 1
        assert entry["labels"]["shard"] == "7"

    def test_explicit_registry_beats_the_global(self):
        private = MetricsRegistry()
        with trace.scoped(off=True):
            with trace.span("private.span", registry=private):
                pass
        assert trace.SPAN_FAMILY in private.snapshot()["families"]

    def test_scoped_restores_previous_registry(self):
        with trace.scoped() as outer:
            with trace.scoped() as inner:
                assert trace.active() is inner
            assert trace.active() is outer

    def test_enable_reuses_then_replace_installs_fresh(self):
        with trace.scoped() as registry:
            assert trace.enable() is registry  # reuse
            fresh = MetricsRegistry()
            assert trace.enable(fresh) is fresh  # replace (the fork path)
            assert trace.active() is fresh


class TestPrometheusExposition:
    def test_render_parse_validate_round_trip(self):
        registry = _loaded_registry()
        registry.counter("odd_labels", "escaping", path='a"b\\c\nd').inc()
        text = render_prometheus(registry.snapshot())
        families = validate_prometheus(text)
        assert families["items_total"]["type"] == "counter"
        assert families["lat"]["type"] == "histogram"
        # Escaped label survives the round trip.
        samples = families["odd_labels"]["samples"]
        assert samples[0][1]["path"] == 'a"b\\c\nd'

    def test_histogram_buckets_render_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "t", op="x")
        histogram.observe(1e-6)
        histogram.observe(1e-6)
        histogram.observe(1000.0)  # overflow
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus(text)
        buckets = [
            (labels["le"], value)
            for name, labels, value in parsed["lat"]["samples"]
            if name == "lat_bucket"
        ]
        assert buckets[0] == ("1e-06", 2.0)
        assert buckets[-1] == ("+Inf", 3.0)

    def test_validator_rejects_broken_documents(self):
        with pytest.raises(ValueError):
            parse_prometheus("orphan_sample 1\n")  # no # TYPE
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE x counter\nx{} not-a-number\n")
        non_cumulative = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            validate_prometheus(non_cumulative)
        missing_inf = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_prometheus(missing_inf)

    def test_describe_snapshot_mentions_every_family(self):
        text = describe_snapshot(_loaded_registry().snapshot())
        assert "items_total" in text and "lat" in text and "p50=" in text
        assert describe_snapshot(None) == "no instruments recorded"


class TestForwardingPaths:
    def test_ingest_profile_forwards_stage_histograms(self):
        from repro.metrics.ingest_profile import (
            STAGE_FAMILY,
            IngestProfile,
        )

        with trace.scoped() as registry:
            profile = IngestProfile()
            profile.add("hashing", 0.002)
            profile.add("hashing", 0.003)
            profile.add("placement", 0.004)
            snapshot = registry.snapshot()
        series = snapshot["families"][STAGE_FAMILY]["series"]
        by_stage = {s["labels"]["stage"]: s for s in series.values()}
        assert by_stage["hashing"]["count"] == 2
        assert by_stage["placement"]["count"] == 1
        # The legacy dict is untouched by the forwarding.
        assert profile.stage_seconds("hashing") == pytest.approx(0.005)

    def test_ingest_profile_disabled_records_nothing(self):
        from repro.metrics.ingest_profile import IngestProfile

        with trace.scoped(off=True):
            profile = IngestProfile()
            profile.add("hashing", 0.002)
        assert profile.stage_seconds("hashing") == pytest.approx(0.002)

    def test_stream_session_feed_records_spans_and_items(self):
        from repro.api import SketchSpec, StreamSession

        with trace.scoped() as registry:
            session = StreamSession(
                SketchSpec("gss", memory_bytes=16384), batch_size=64
            )
            session.feed([(f"s{i}", f"d{i % 7}", 1.0) for i in range(200)])
            snapshot = registry.snapshot()
        families = snapshot["families"]
        assert (
            families["repro_session_items_total"]["series"][""]["value"] == 200
        )
        spans = {
            s["labels"].get("span")
            for s in families[trace.SPAN_FAMILY]["series"].values()
        }
        assert "session.feed" in spans
        assert "session.feed.batch" in spans


class TestClusterObs:
    def test_worker_snapshots_merge_into_the_parent_view(self):
        from repro.api import SketchSpec
        from repro.cluster import ShardedSummary

        with trace.scoped():
            with ShardedSummary(
                SketchSpec("gss", memory_bytes=65536), workers=2
            ) as cluster:
                cluster.update_many(
                    [(f"n{i}", f"m{i % 11}", 1.0) for i in range(2000)]
                )
                cluster.flush()
                snapshot = cluster.obs_snapshot()
        families = snapshot["families"]
        worker_items = sum(
            s["value"]
            for s in families["repro_worker_items_total"]["series"].values()
        )
        routed = sum(
            s["value"]
            for s in families["repro_cluster_items_routed_total"][
                "series"
            ].values()
        )
        assert worker_items == routed == 2000
        spans = {
            s["labels"].get("span")
            for s in families[trace.SPAN_FAMILY]["series"].values()
        }
        assert "worker.ingest" in spans
        assert "cluster.route" in spans
        assert "repro_cluster_queue_depth" in families

    def test_obs_disabled_cluster_returns_none_and_enable_after(self):
        from repro.api import SketchSpec
        from repro.cluster import ShardedSummary

        with trace.scoped(off=True):
            with ShardedSummary(
                SketchSpec("gss", memory_bytes=65536), workers=2
            ) as cluster:
                assert cluster.obs_snapshot() is None
                cluster.enable_obs()  # the serve front end's path
                cluster.update_many(
                    [(f"n{i}", f"m{i % 5}", 1.0) for i in range(500)]
                )
                cluster.flush()
                snapshot = cluster.obs_snapshot()
        assert snapshot is not None
        worker_items = sum(
            s["value"]
            for s in snapshot["families"]["repro_worker_items_total"][
                "series"
            ].values()
        )
        assert worker_items == 500


class TestServeObs:
    @pytest.fixture()
    def served_cluster(self):
        from repro.api import SketchSpec, build
        from repro.serve import ServeConfig, serve_in_thread

        summary = build(
            SketchSpec(
                "sharded-gss", memory_bytes=131072, params={"workers": 2}
            )
        )
        with serve_in_thread(
            summary, ServeConfig(close_summary=True)
        ) as handle:
            yield handle

    def test_json_keys_unchanged_and_obs_additive(self, served_cluster):
        from repro.serve.client import ServeClient

        with ServeClient(served_cluster.host, served_cluster.port) as client:
            client.ingest([(f"x{i}", f"y{i % 9}", 1.0) for i in range(1000)])
            client.flush()
            document = client.metrics()
        for key in (
            "server",
            "uptime_seconds",
            "connections_open",
            "connections_total",
            "frames_received",
            "ingest_frames",
            "ingest_items",
            "binary_ingest_frames",
            "busy_replies",
            "queries",
            "flushes",
            "checkpoints",
            "errors",
            "inflight_batches",
            "inflight_high_water",
            "credits_per_connection",
            "max_inflight_batches",
            "update_count",
            "shards",
        ):
            assert key in document, key
        assert document["ingest_items"] == 1000
        assert isinstance(document["ingest_items"], int)
        assert document["obs"]["obs_format"] == 1

    def test_server_side_histogram_count_equals_client_queries(
        self, served_cluster
    ):
        from repro.serve.client import ServeClient, fetch_http_metrics_text
        from repro.serve.metrics import REQUEST_LATENCY_FAMILY

        n_queries = 17
        with ServeClient(served_cluster.host, served_cluster.port) as client:
            client.ingest([(f"x{i}", f"y{i % 9}", 1.0) for i in range(300)])
            client.flush()
            for index in range(n_queries):
                client.edge_query(f"x{index}", f"y{index % 9}")
            document = client.metrics()
        series = document["obs"]["families"][REQUEST_LATENCY_FAMILY]["series"]
        (edge,) = [
            s for s in series.values() if s["labels"].get("op") == "edge_query"
        ]
        assert edge["count"] == n_queries
        # The Prometheus exposition agrees with the JSON snapshot.
        text = fetch_http_metrics_text(served_cluster.host, served_cluster.port)
        families = validate_prometheus(text)
        count_samples = [
            value
            for name, labels, value in families[REQUEST_LATENCY_FAMILY][
                "samples"
            ]
            if name == f"{REQUEST_LATENCY_FAMILY}_count"
            and labels.get("op") == "edge_query"
        ]
        assert count_samples == [float(n_queries)]

    def test_http_metrics_content_negotiation(self, served_cluster):
        from repro.serve.client import (
            fetch_http_metrics,
            fetch_http_metrics_text,
        )

        document = fetch_http_metrics(served_cluster.host, served_cluster.port)
        assert document["server"] == "repro-serve"
        text = fetch_http_metrics_text(
            served_cluster.host, served_cluster.port
        )
        assert text.startswith("#")
        validate_prometheus(text)

    def test_obs_disabled_server_keeps_json_shape(self):
        from repro.api import SketchSpec, build
        from repro.serve import ServeConfig, serve_in_thread
        from repro.serve.client import ServeClient

        summary = build(SketchSpec("gss", memory_bytes=65536))
        with serve_in_thread(
            summary, ServeConfig(close_summary=True, obs=False)
        ) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.ingest([("a", "b", 1.0)])
                client.drain()
                document = client.metrics()
        assert document["ingest_items"] == 1
        assert "obs" not in document


class TestObsCli:
    def test_pretty_print_from_dump_file(self, tmp_path, capsys):
        from repro.cli import main

        snapshot = _loaded_registry().snapshot()
        dump = tmp_path / "metrics.json"
        dump.write_text(json.dumps({"server": "repro-serve", "obs": snapshot}))
        assert main(["obs", "--file", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "items_total" in out

    def test_bare_snapshot_and_json_reexport(self, tmp_path, capsys):
        from repro.cli import main

        dump = tmp_path / "snapshot.json"
        dump.write_text(json.dumps(_loaded_registry().snapshot()))
        target = tmp_path / "out.json"
        assert main(
            ["obs", "--file", str(dump), "--json", str(target)]
        ) == 0
        capsys.readouterr()
        reloaded = json.loads(target.read_text())
        assert "items_total" in reloaded["families"]

    def test_document_without_obs_fails(self, tmp_path, capsys):
        from repro.cli import main

        dump = tmp_path / "metrics.json"
        dump.write_text(json.dumps({"server": "repro-serve"}))
        assert main(["obs", "--file", str(dump)]) == 1
        assert "no obs snapshot" in capsys.readouterr().err

    def test_check_prometheus_good_and_bad(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.prom"
        good.write_text(render_prometheus(_loaded_registry().snapshot()))
        assert main(["obs", "--check-prometheus", str(good)]) == 0
        capsys.readouterr()
        bad = tmp_path / "bad.prom"
        bad.write_text("orphan_sample 1\n")
        assert main(["obs", "--check-prometheus", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().err
