"""Analytical models from Section VI of the paper.

* :mod:`repro.analysis.collision` — the edge-collision probability of the
  hash mapping (Equations 8–12) and the correct-rate formulas for the three
  query primitives, for both GSS (``M = m * F``) and TCM (``M = m``).
* :mod:`repro.analysis.buffer_model` — the probability that an insertion
  fails and the edge becomes a left-over (Equations 13–18).
* :mod:`repro.analysis.figure3` — the theoretical accuracy-vs-``M/|V|``
  sweeps plotted in Figure 3.
"""

from repro.analysis.collision import (
    edge_collision_probability,
    edge_query_correct_rate,
    node_collision_free_probability,
    precursor_query_correct_rate,
    successor_query_correct_rate,
)
from repro.analysis.buffer_model import bucket_availability_probability, insertion_failure_probability
from repro.analysis.figure3 import figure3_series
from repro.analysis.memory import (
    MemoryComparison,
    adjacency_list_memory_bytes,
    adjacency_matrix_memory_bytes,
    compare_structures,
    gss_memory_bytes,
    gss_width_for_memory,
    memory_sweep,
    tcm_memory_bytes,
    tcm_width_for_memory,
)
from repro.analysis.error_models import (
    expected_edge_query_relative_error,
    expected_false_successors,
    expected_node_query_relative_error,
    expected_successor_precision,
    expected_true_negative_recall,
    reachability_false_positive_bound,
)

__all__ = [
    "edge_collision_probability",
    "edge_query_correct_rate",
    "node_collision_free_probability",
    "successor_query_correct_rate",
    "precursor_query_correct_rate",
    "bucket_availability_probability",
    "insertion_failure_probability",
    "figure3_series",
    "MemoryComparison",
    "gss_memory_bytes",
    "tcm_memory_bytes",
    "adjacency_list_memory_bytes",
    "adjacency_matrix_memory_bytes",
    "gss_width_for_memory",
    "tcm_width_for_memory",
    "compare_structures",
    "memory_sweep",
    "expected_false_successors",
    "expected_successor_precision",
    "expected_node_query_relative_error",
    "expected_edge_query_relative_error",
    "expected_true_negative_recall",
    "reachability_false_positive_bound",
]
