"""The left-over edge buffer.

Edges that cannot be placed in any of their candidate buckets are stored in an
adjacency-list buffer ``B`` keyed by the *sketch* node hashes.  The buffer is
exact: weights of identical sketch edges are summed, and it is indexed in both
directions so successor and precursor queries can consult it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple


class LeftoverBuffer:
    """Adjacency-list storage of left-over sketch edges ``H(s) -> H(d)``."""

    def __init__(self) -> None:
        self._out: Dict[int, Dict[int, float]] = {}
        self._in: Dict[int, Set[int]] = {}
        self._edge_count = 0

    def __len__(self) -> int:
        return self._edge_count

    def __bool__(self) -> bool:
        return self._edge_count > 0

    def add(self, source_hash: int, destination_hash: int, weight: float) -> None:
        """Add ``weight`` to the buffered edge, creating it if absent."""
        out_edges = self._out.setdefault(source_hash, {})
        if destination_hash not in out_edges:
            self._edge_count += 1
            self._in.setdefault(destination_hash, set()).add(source_hash)
            out_edges[destination_hash] = 0.0
        out_edges[destination_hash] += weight

    def contains(self, source_hash: int, destination_hash: int) -> bool:
        """True when the buffered edge exists."""
        return destination_hash in self._out.get(source_hash, {})

    def weight(self, source_hash: int, destination_hash: int) -> float:
        """Return the buffered weight; raises ``KeyError`` when absent."""
        return self._out[source_hash][destination_hash]

    def get(
        self, source_hash: int, destination_hash: int, default: Optional[float] = None
    ) -> Optional[float]:
        """Return the buffered weight or ``default`` when absent."""
        return self._out.get(source_hash, {}).get(destination_hash, default)

    def successors_of(self, source_hash: int) -> List[int]:
        """Destination hashes of all buffered edges leaving ``source_hash``."""
        return list(self._out.get(source_hash, {}))

    def precursors_of(self, destination_hash: int) -> List[int]:
        """Source hashes of all buffered edges entering ``destination_hash``."""
        return list(self._in.get(destination_hash, ()))

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over all buffered ``(H(s), H(d), weight)`` triples."""
        for source_hash, neighbors in self._out.items():
            for destination_hash, weight in neighbors.items():
                yield source_hash, destination_hash, weight

    def memory_bytes(self) -> int:
        """Buffer memory under the paper's C layout (two 32-bit node hashes
        plus a 32-bit weight and a 32-bit next pointer per list cell)."""
        return self._edge_count * 16
