"""GSS — the Graph Stream Sketch (the paper's core contribution).

Two implementations are provided:

* :class:`~repro.core.basic.GSSBasic` — the conceptually simple scheme of
  Section IV: one mapped bucket per edge, one room per bucket, left-over edges
  spill to the adjacency-list buffer.
* :class:`~repro.core.gss.GSS` — the full augmented algorithm of Section V:
  square hashing (``r`` alternative rows/columns per node), candidate-bucket
  sampling (``k`` probes per edge) and multiple rooms per bucket, all
  individually switchable so the paper's ablations (Figure 13, Table I) can be
  reproduced.

Beyond the two sketches, the subpackage provides the deployment wrappers the
paper's introduction motivates: :class:`~repro.core.windowed.WindowedGSS`
(sliding-window summaries), :class:`~repro.core.partitioned.PartitionedGSS`
(source-partitioned shards, as in distributed graph systems),
:class:`~repro.core.undirected.UndirectedGSS` and sketch merging
(:mod:`repro.core.merge`).
"""

from repro.core.config import GSSConfig
from repro.core.basic import GSSBasic
from repro.core.gss import GSS
from repro.core.buffer import LeftoverBuffer
from repro.core.reverse_index import NodeIndex
from repro.core.undirected import UndirectedGSS
from repro.core.windowed import WindowedGSS
from repro.core.partitioned import PartitionedGSS
from repro.core.ensemble import GSSEnsemble
from repro.core.merge import compatible_for_merge, merge_into, merge_sketches

__all__ = [
    "GSSEnsemble",
    "GSSConfig",
    "GSSBasic",
    "GSS",
    "LeftoverBuffer",
    "NodeIndex",
    "UndirectedGSS",
    "WindowedGSS",
    "PartitionedGSS",
    "compatible_for_merge",
    "merge_into",
    "merge_sketches",
]
