"""Figure 15 — subgraph-matching correct rate: GSS vs an exact matcher.

The paper slices web-NotreDame into windows of 10k–50k edges, extracts
patterns of 6–15 labeled edges by random walk, and checks whether matching on
the GSS-summarized window finds correct instances; GSS stays near 100% while
using a tenth of the exact algorithm's memory.  Our runner mirrors the
procedure on the web-NotreDame analog: patterns are extracted from the exact
window graph, the window is summarized with GSS at a tenth of the exact
store's edge memory, both matchers search for each pattern, and a GSS match
counts as correct when every matched edge really exists in the window.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.baselines.exact_matcher import WindowedExactMatcher
from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.datasets.synthetic import labeled_stream
from repro.queries.subgraph import LabeledDiGraph, Pattern, PatternEdge, SubgraphMatcher
from repro.streaming.stream import GraphStream


def random_walk_pattern(
    graph: LabeledDiGraph, edge_count: int, rng: random.Random
) -> Optional[Tuple[Pattern, dict]]:
    """Extract a connected pattern of ``edge_count`` edges by random walk.

    Returns the pattern (over fresh variables) and the instance mapping it was
    extracted from, or ``None`` when the walk gets stuck.
    """
    nodes = [node for node in graph.nodes() if graph.successors(node)]
    if not nodes:
        return None
    for _ in range(30):  # retry a few starting points before giving up
        start = rng.choice(nodes)
        variable_of = {start: "v0"}
        pattern_edges: List[PatternEdge] = []
        visited_edges = set()
        frontier = [start]
        while len(pattern_edges) < edge_count and frontier:
            current = rng.choice(frontier)
            candidates = [
                (destination, label)
                for destination, label in graph.successors(current).items()
                if (current, destination) not in visited_edges
            ]
            if not candidates:
                frontier.remove(current)
                continue
            destination, label = rng.choice(candidates)
            visited_edges.add((current, destination))
            if destination not in variable_of:
                variable_of[destination] = f"v{len(variable_of)}"
                frontier.append(destination)
            pattern_edges.append(
                PatternEdge(variable_of[current], variable_of[destination], label)
            )
        if len(pattern_edges) == edge_count:
            instance = {variable: node for node, variable in variable_of.items()}
            return Pattern(pattern_edges), instance
    return None


def _gss_window_graph(config, window: GraphStream, labels) -> LabeledDiGraph:
    """Summarize the window with GSS and reconstruct the labeled graph."""
    statistics = window.statistics()
    # A tenth of the exact store's memory, as in the paper's SJ-tree setup:
    # one room per ~10 distinct edges.
    width = max(4, int((statistics.distinct_edges / (10 * config.rooms)) ** 0.5) + 1)
    sketch = config.feed(config.build_gss(width, max(config.fingerprint_bits)), window)
    return LabeledDiGraph.from_store(sketch, window.nodes(), labels)


def run_subgraph_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Reproduce Figure 15: matching correct rate of GSS vs the exact matcher."""
    config = config or ExperimentConfig()
    dataset = config.extras.get("subgraph_dataset", "web-NotreDame")
    window_sizes = config.extras.get("subgraph_window_sizes", (1000, 2000, 3000))
    pattern_sizes = config.extras.get("subgraph_pattern_sizes", (3, 4, 6))
    patterns_per_size = config.extras.get("subgraph_patterns_per_size", 3)
    rng = random.Random(config.seed)

    subgraph_config = ExperimentConfig(
        datasets=(dataset,),
        dataset_scale=config.dataset_scale,
        fingerprint_bits=config.fingerprint_bits,
        sequence_length=config.sequence_length,
        candidate_buckets=config.candidate_buckets,
        rooms=config.rooms,
        seed=config.seed,
    )

    result = ExperimentResult(
        experiment="fig15",
        description="subgraph matching correct rate vs window size (GSS at 1/10 memory)",
        columns=["dataset", "window_size", "structure", "correct_rate", "patterns"],
    )

    for name, stream in load_streams(subgraph_config):
        stream = labeled_stream(stream, seed=config.seed)
        labels = {edge.key: edge.label for edge in stream}
        for window_size in window_sizes:
            if window_size > len(stream):
                window_size = len(stream)
            window = stream.window(0, window_size)
            exact = WindowedExactMatcher(window)
            gss_graph = _gss_window_graph(subgraph_config, window, labels)
            gss_matcher = SubgraphMatcher(gss_graph)

            attempted = 0
            exact_correct = 0
            gss_correct = 0
            for pattern_size in pattern_sizes:
                for _ in range(patterns_per_size):
                    extracted = random_walk_pattern(exact.graph, pattern_size, rng)
                    if extracted is None:
                        continue
                    pattern, _instance = extracted
                    attempted += 1
                    if exact.find_match(pattern) is not None:
                        exact_correct += 1
                    embedding = gss_matcher.find_one(pattern)
                    if embedding is not None:
                        matched_edges = [
                            (embedding[edge.source], embedding[edge.destination])
                            for edge in pattern.edges
                        ]
                        if exact.contains_edges(matched_edges):
                            gss_correct += 1
            if attempted == 0:
                continue
            result.add(
                dataset=name,
                window_size=window_size,
                structure="SJ-tree (exact)",
                correct_rate=exact_correct / attempted,
                patterns=attempted,
            )
            result.add(
                dataset=name,
                window_size=window_size,
                structure="GSS",
                correct_rate=gss_correct / attempted,
                patterns=attempted,
            )
    return result
