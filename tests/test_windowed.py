"""Tests for the sliding-window GSS wrapper."""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.windowed import WindowedGSS
from repro.queries.primitives import EDGE_NOT_FOUND
from repro.streaming.edge import StreamEdge


def make_window(span: float = 100.0, slices: int = 4, width: int = 32) -> WindowedGSS:
    config = GSSConfig(matrix_width=width, sequence_length=4, candidate_buckets=4)
    return WindowedGSS(config, window_span=span, slices=slices)


class TestConstruction:
    def test_rejects_non_positive_span(self):
        config = GSSConfig(matrix_width=8)
        with pytest.raises(ValueError):
            WindowedGSS(config, window_span=0.0)

    def test_rejects_zero_slices(self):
        config = GSSConfig(matrix_width=8)
        with pytest.raises(ValueError):
            WindowedGSS(config, window_span=10.0, slices=0)

    def test_starts_empty(self):
        window = make_window()
        assert window.active_slice_count == 0
        assert window.update_count == 0
        assert window.latest_timestamp is None
        assert window.window_bounds() is None


class TestUpdatesAndQueries:
    def test_edge_query_inside_window(self):
        window = make_window()
        window.update("a", "b", weight=2.0, timestamp=1.0)
        window.update("a", "b", weight=3.0, timestamp=2.0)
        assert window.edge_query("a", "b") == pytest.approx(5.0)

    def test_missing_edge_returns_sentinel(self):
        window = make_window()
        window.update("a", "b", timestamp=1.0)
        assert window.edge_query("x", "y") is None

    def test_weights_accumulate_across_slices(self):
        window = make_window(span=100.0, slices=4)
        window.update("a", "b", weight=1.0, timestamp=5.0)    # slice 0
        window.update("a", "b", weight=2.0, timestamp=60.0)   # slice 2
        assert window.edge_query("a", "b") == pytest.approx(3.0)
        assert window.active_slice_count == 2

    def test_successor_union_over_slices(self):
        window = make_window(span=100.0, slices=4)
        window.update("a", "b", timestamp=5.0)
        window.update("a", "c", timestamp=60.0)
        assert window.successor_query("a") == {"b", "c"}

    def test_precursor_union_over_slices(self):
        window = make_window(span=100.0, slices=4)
        window.update("b", "a", timestamp=5.0)
        window.update("c", "a", timestamp=60.0)
        assert window.precursor_query("a") == {"b", "c"}

    def test_node_weights(self):
        window = make_window()
        window.update("a", "b", weight=2.0, timestamp=1.0)
        window.update("a", "c", weight=3.0, timestamp=2.0)
        window.update("d", "a", weight=5.0, timestamp=3.0)
        assert window.node_out_weight("a") == pytest.approx(5.0)
        assert window.node_in_weight("a") == pytest.approx(5.0)

    def test_implicit_timestamps_count_items(self):
        window = make_window(span=10.0, slices=2)
        for position in range(5):
            window.update("a", f"b{position}")
        assert window.update_count == 5
        assert window.latest_timestamp == pytest.approx(4.0)


class TestExpiry:
    def test_old_slices_are_dropped(self):
        window = make_window(span=100.0, slices=4)
        window.update("a", "b", timestamp=1.0)
        window.update("x", "y", timestamp=500.0)
        assert window.edge_query("a", "b") is None
        assert window.edge_query("x", "y") == pytest.approx(1.0)
        assert window.expired_slice_count >= 1

    def test_items_older_than_window_are_ignored(self):
        window = make_window(span=50.0, slices=5)
        window.update("x", "y", timestamp=1000.0)
        window.update("a", "b", timestamp=10.0)  # far in the past
        assert window.edge_query("a", "b") is None
        assert window.update_count == 2

    def test_window_bounds_follow_latest_item(self):
        window = make_window(span=50.0)
        window.update("a", "b", timestamp=80.0)
        start, end = window.window_bounds()
        assert end == pytest.approx(80.0)
        assert start == pytest.approx(30.0)

    def test_recent_items_survive_expiry(self):
        window = make_window(span=100.0, slices=10)
        for step in range(20):
            window.update("s", f"d{step}", timestamp=float(step * 10))
        # Only items in the last 100 time units should remain visible.
        assert window.edge_query("s", "d19") == pytest.approx(1.0)
        assert window.edge_query("s", "d0") is None


class TestIngestAndStats:
    def test_ingest_stream_edges(self):
        window = make_window(span=1000.0)
        edges = [
            StreamEdge("a", "b", weight=1.0, timestamp=1.0),
            StreamEdge("a", "b", weight=2.0, timestamp=5.0),
            StreamEdge("b", "c", weight=1.0, timestamp=9.0),
        ]
        window.ingest(edges)
        assert window.edge_query("a", "b") == pytest.approx(3.0)
        assert window.edge_query("b", "c") == pytest.approx(1.0)

    def test_memory_scales_with_live_slices(self):
        window = make_window(span=100.0, slices=4)
        assert window.memory_bytes() == 0
        window.update("a", "b", timestamp=1.0)
        one_slice = window.memory_bytes()
        window.update("a", "c", timestamp=60.0)
        assert window.memory_bytes() == 2 * one_slice

    def test_buffer_percentage_zero_when_uncongested(self):
        window = make_window()
        window.update("a", "b", timestamp=1.0)
        assert window.buffer_percentage() == 0.0
