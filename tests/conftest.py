"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.datasets.registry import load_dataset
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


@pytest.fixture()
def paper_stream() -> GraphStream:
    """The 15-item example stream of Figure 1 in the paper."""
    items = [
        ("a", "b", 1), ("a", "c", 1), ("b", "d", 1), ("a", "c", 1), ("a", "f", 1),
        ("c", "f", 1), ("a", "e", 1), ("a", "c", 3), ("c", "f", 1), ("d", "a", 1),
        ("d", "f", 1), ("f", "e", 3), ("a", "g", 1), ("e", "b", 2), ("d", "a", 1),
    ]
    return GraphStream(
        [
            StreamEdge(source=s, destination=d, weight=float(w), timestamp=float(i))
            for i, (s, d, w) in enumerate(items)
        ],
        name="figure1",
    )


@pytest.fixture()
def small_stream() -> GraphStream:
    """A small but non-trivial synthetic stream (communication analog)."""
    return load_dataset("email-EuAll", scale=0.05)


@pytest.fixture()
def medium_stream() -> GraphStream:
    """A medium synthetic stream used by the slower integration tests."""
    return load_dataset("email-EuAll", scale=0.15)


@pytest.fixture()
def small_gss(small_stream) -> GSS:
    """A GSS sized for the small stream, fully ingested."""
    stats = small_stream.statistics()
    config = GSSConfig.for_edge_count(
        stats.distinct_edges, sequence_length=8, candidate_buckets=8
    )
    sketch = GSS(config)
    sketch.ingest(small_stream)
    return sketch
