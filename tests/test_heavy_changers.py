"""Tests for cross-epoch heavy-changer and persistence queries."""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.queries.heavy_changers import (
    edge_changes,
    heavy_changers,
    new_edges,
    persistent_edges,
    relative_changers,
    top_k_changers,
    vanished_edges,
)


def build_epochs():
    """Two exact epochs with known weight changes."""
    before = AdjacencyListGraph()
    after = AdjacencyListGraph()
    before.update("a", "b", 10.0)
    after.update("a", "b", 50.0)      # grows by 40
    before.update("c", "d", 5.0)
    after.update("c", "d", 5.0)       # unchanged
    before.update("e", "f", 20.0)     # vanishes
    after.update("g", "h", 7.0)       # brand new
    return before, after


EDGES = [("a", "b"), ("c", "d"), ("e", "f"), ("g", "h")]


class TestEdgeChanges:
    def test_signed_changes(self):
        before, after = build_epochs()
        changes = dict(edge_changes(before, after, EDGES))
        assert changes[("a", "b")] == pytest.approx(40.0)
        assert changes[("c", "d")] == pytest.approx(0.0)
        assert changes[("e", "f")] == pytest.approx(-20.0)
        assert changes[("g", "h")] == pytest.approx(7.0)

    def test_heavy_changers_threshold(self):
        before, after = build_epochs()
        heavy = heavy_changers(before, after, EDGES, threshold=10.0)
        keys = [edge for edge, _ in heavy]
        assert ("a", "b") in keys
        assert ("e", "f") in keys
        assert ("c", "d") not in keys

    def test_heavy_changers_sorted_by_magnitude(self):
        before, after = build_epochs()
        heavy = heavy_changers(before, after, EDGES, threshold=1.0)
        magnitudes = [abs(delta) for _, delta in heavy]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_heavy_changers_rejects_negative_threshold(self):
        before, after = build_epochs()
        with pytest.raises(ValueError):
            heavy_changers(before, after, EDGES, threshold=-1.0)

    def test_top_k_changers(self):
        before, after = build_epochs()
        top = top_k_changers(before, after, EDGES, 2)
        assert top[0][0] == ("a", "b")
        assert len(top) == 2
        with pytest.raises(ValueError):
            top_k_changers(before, after, EDGES, -1)


class TestRelativeChangers:
    def test_growth_factor_reported(self):
        before, after = build_epochs()
        relative = dict(relative_changers(before, after, EDGES, ratio=2.0))
        assert relative[("a", "b")] == pytest.approx(5.0)

    def test_unchanged_edges_excluded(self):
        before, after = build_epochs()
        relative = dict(relative_changers(before, after, EDGES, ratio=2.0))
        assert ("c", "d") not in relative

    def test_new_edge_reported(self):
        before, after = build_epochs()
        relative = dict(relative_changers(before, after, EDGES, ratio=2.0))
        assert ("g", "h") in relative

    def test_minimum_weight_filters_noise(self):
        before, after = build_epochs()
        relative = relative_changers(before, after, [("x", "y")], ratio=2.0, minimum_weight=1.0)
        assert relative == []

    def test_invalid_ratio(self):
        before, after = build_epochs()
        with pytest.raises(ValueError):
            relative_changers(before, after, EDGES, ratio=0.0)


class TestPresenceQueries:
    def test_persistent_edges(self):
        before, after = build_epochs()
        persistent = persistent_edges([before, after], EDGES)
        assert ("a", "b") in persistent
        assert ("c", "d") in persistent
        assert ("e", "f") not in persistent

    def test_persistent_requires_stores(self):
        with pytest.raises(ValueError):
            persistent_edges([], EDGES)

    def test_new_edges(self):
        before, after = build_epochs()
        assert new_edges(before, after, EDGES) == [("g", "h")]

    def test_vanished_edges(self):
        before, after = build_epochs()
        assert vanished_edges(before, after, EDGES) == [("e", "f")]


class TestOnSketches:
    def test_sketch_epochs_detect_dominant_changer(self, small_stream):
        """Split the stream in two epochs and boost one edge in the second."""
        stats = small_stream.statistics()
        config = GSSConfig.for_edge_count(
            stats.distinct_edges, sequence_length=4, candidate_buckets=4
        )
        half = len(small_stream) // 2
        before = GSS(config).ingest(small_stream[:half])
        after = GSS(config).ingest(small_stream[half:])
        boosted = small_stream.distinct_edge_keys()[0]
        for _ in range(50):
            after.update(boosted[0], boosted[1], 10.0)

        candidates = small_stream.distinct_edge_keys()[:200]
        top = top_k_changers(before, after, candidates, 5)
        assert boosted in [edge for edge, _ in top]
