"""Unit tests for the path-style compound queries."""

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.queries.paths import (
    k_hop_precursors,
    k_hop_successors,
    shortest_path,
    shortest_path_length,
    weakly_connected_components,
)
from repro.queries.primitives import consume_stream
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


@pytest.fixture()
def chain_store():
    """a -> b -> c -> d plus an isolated pair x -> y."""
    stream = GraphStream(
        [
            StreamEdge("a", "b"),
            StreamEdge("b", "c"),
            StreamEdge("c", "d"),
            StreamEdge("x", "y"),
        ]
    )
    return consume_stream(AdjacencyListGraph(), stream), stream


class TestKHop:
    def test_k_hop_successors(self, chain_store):
        store, _ = chain_store
        assert k_hop_successors(store, "a", 1) == {"b"}
        assert k_hop_successors(store, "a", 2) == {"b", "c"}
        assert k_hop_successors(store, "a", 10) == {"b", "c", "d"}

    def test_k_hop_precursors(self, chain_store):
        store, _ = chain_store
        assert k_hop_precursors(store, "d", 1) == {"c"}
        assert k_hop_precursors(store, "d", 3) == {"a", "b", "c"}

    def test_zero_hops(self, chain_store):
        store, _ = chain_store
        assert k_hop_successors(store, "a", 0) == set()

    def test_negative_hops_rejected(self, chain_store):
        store, _ = chain_store
        with pytest.raises(ValueError):
            k_hop_successors(store, "a", -1)
        with pytest.raises(ValueError):
            k_hop_precursors(store, "a", -1)

    def test_max_nodes_cap(self, chain_store):
        store, _ = chain_store
        capped = k_hop_successors(store, "a", 10, max_nodes=1)
        assert len(capped) <= 2


class TestShortestPaths:
    def test_length(self, chain_store):
        store, _ = chain_store
        assert shortest_path_length(store, "a", "a") == 0
        assert shortest_path_length(store, "a", "b") == 1
        assert shortest_path_length(store, "a", "d") == 3
        assert shortest_path_length(store, "a", "y") is None

    def test_path(self, chain_store):
        store, _ = chain_store
        assert shortest_path(store, "a", "d") == ["a", "b", "c", "d"]
        assert shortest_path(store, "a", "a") == ["a"]
        assert shortest_path(store, "d", "a") is None

    def test_shortest_among_alternatives(self):
        stream = GraphStream(
            [
                StreamEdge("a", "b"),
                StreamEdge("b", "d"),
                StreamEdge("a", "c"),
                StreamEdge("c", "e"),
                StreamEdge("e", "d"),
                StreamEdge("a", "d"),
            ]
        )
        store = consume_stream(AdjacencyListGraph(), stream)
        assert shortest_path_length(store, "a", "d") == 1
        assert shortest_path(store, "a", "d") == ["a", "d"]

    def test_max_nodes_gives_up(self, chain_store):
        store, _ = chain_store
        assert shortest_path_length(store, "a", "d", max_nodes=2) is None
        assert shortest_path(store, "a", "d", max_nodes=2) is None


class TestComponents:
    def test_two_components(self, chain_store):
        store, stream = chain_store
        components = weakly_connected_components(store, stream.nodes())
        sizes = sorted(len(component) for component in components)
        assert sizes == [2, 4]

    def test_direction_ignored(self):
        stream = GraphStream([StreamEdge("a", "b"), StreamEdge("c", "b")])
        store = consume_stream(AdjacencyListGraph(), stream)
        components = weakly_connected_components(store, stream.nodes())
        assert len(components) == 1


class TestOnSketch:
    def test_paths_on_gss_never_longer_than_exact(self, paper_stream):
        exact = consume_stream(AdjacencyListGraph(), paper_stream)
        sketch = GSS(
            GSSConfig(matrix_width=8, fingerprint_bits=16, sequence_length=4, candidate_buckets=4)
        )
        sketch.ingest(paper_stream)
        nodes = paper_stream.nodes()
        for source in nodes:
            for destination in nodes:
                exact_length = shortest_path_length(exact, source, destination)
                if exact_length is None:
                    continue
                sketch_length = shortest_path_length(sketch, source, destination)
                # sketches only add edges, so paths can only get shorter
                assert sketch_length is not None
                assert sketch_length <= exact_length

    def test_k_hop_on_gss_is_superset(self, paper_stream):
        exact = consume_stream(AdjacencyListGraph(), paper_stream)
        sketch = GSS(
            GSSConfig(matrix_width=8, fingerprint_bits=16, sequence_length=4, candidate_buckets=4)
        )
        sketch.ingest(paper_stream)
        for node in paper_stream.nodes():
            assert k_hop_successors(exact, node, 2) <= k_hop_successors(sketch, node, 2)
