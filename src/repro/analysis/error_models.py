"""Error models for the compound queries built on the primitives.

Section VI-B of the paper derives the correct rate of the three primitives.
The compound queries the evaluation reports (node queries, reachability,
triangle counting) inherit their error from the primitives; this module works
out those propagated error models so the measured results in EXPERIMENTS.md
can be checked against theory:

* node query — the estimate is the true out-weight plus the weight of every
  colliding edge; its expected relative error follows from the edge-collision
  probability and the average edge weight;
* reachability (true-negative recall) — an unreachable pair is falsely
  reported reachable when hash collisions create a spurious path; we bound
  that with the probability that any of the candidate frontier edges collides;
* expected number of false successors per 1-hop query, used to sanity-check
  the precision measurements of Figures 9/10.

All formulas use the same ``M`` convention as :mod:`repro.analysis.collision`:
``M = m * F`` for GSS, ``M = m`` for TCM.
"""

from __future__ import annotations

import math

from repro.analysis.collision import edge_query_correct_rate


def _validate_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive")


def expected_false_successors(M: float, nodes: float, edges: float) -> float:
    """Expected number of spurious nodes in a 1-hop successor answer.

    Each of the ``|V|`` candidate non-successors appears in the answer when
    the corresponding potential edge collides with an existing edge, which
    happens with probability about ``|E| / M^2 + d/M``; summing the first term
    over the ``|V|`` candidates gives ``|V| * |E| / M^2`` (the second term is
    what the per-degree curves of Figure 3 add).
    """
    _validate_positive("M", M)
    if nodes < 0 or edges < 0:
        raise ValueError("nodes and edges must be non-negative")
    return nodes * (1.0 - edge_query_correct_rate(M, edges))


def expected_successor_precision(
    M: float, nodes: float, edges: float, out_degree: float
) -> float:
    """Expected precision ``|SS| / |SS_hat|`` of a 1-hop successor query.

    The true successors are always reported (no false negatives), so the
    precision is ``d / (d + expected false successors)``; degree-0 nodes are
    defined to have precision 1 when nothing spurious shows up.
    """
    if out_degree < 0:
        raise ValueError("out_degree must be non-negative")
    false_successors = expected_false_successors(M, nodes, edges)
    denominator = out_degree + false_successors
    if denominator == 0:
        return 1.0
    return out_degree / denominator if out_degree > 0 else (1.0 if false_successors == 0 else 0.0)


def expected_node_query_relative_error(
    M: float, edges: float, node_out_weight: float, average_edge_weight: float
) -> float:
    """Expected relative error of a node (aggregate out-weight) query.

    The estimate adds the weight of every edge whose source node collides with
    the queried node — about ``|E| / M`` edges in expectation, each carrying
    the average edge weight.  The relative error is that spurious mass divided
    by the true out-weight.
    """
    _validate_positive("M", M)
    if edges < 0:
        raise ValueError("edges must be non-negative")
    if node_out_weight <= 0:
        raise ValueError("node_out_weight must be positive")
    if average_edge_weight < 0:
        raise ValueError("average_edge_weight must be non-negative")
    spurious_edges = edges / M
    return spurious_edges * average_edge_weight / node_out_weight


def expected_edge_query_relative_error(
    M: float, edges: float, edge_weight: float, average_edge_weight: float, adjacent_edges: float = 0.0
) -> float:
    """Expected relative error of an edge query.

    With probability ``1 - P`` (Equation 12) at least one other edge collides
    and adds (at least) the average edge weight to the estimate.
    """
    if edge_weight <= 0:
        raise ValueError("edge_weight must be positive")
    collision_probability = 1.0 - edge_query_correct_rate(M, edges, adjacent_edges)
    return collision_probability * average_edge_weight / edge_weight


def reachability_false_positive_bound(
    M: float, nodes: float, edges: float, frontier_size: float, path_length: float = 1.0
) -> float:
    """Upper bound on falsely reporting an unreachable pair as reachable.

    A spurious path needs at least one spurious edge out of the (at most)
    ``frontier_size * path_length`` candidate edges the BFS examines; a union
    bound over their individual collision probabilities gives the result,
    capped at 1.
    """
    _validate_positive("M", M)
    if frontier_size < 0 or path_length < 0:
        raise ValueError("frontier_size and path_length must be non-negative")
    per_edge_collision = 1.0 - edge_query_correct_rate(M, edges)
    bound = frontier_size * path_length * per_edge_collision
    # The successor scan only creates a false edge to nodes that share a hash;
    # the per-candidate probability is also bounded by nodes / M.
    bound = min(bound, frontier_size * path_length * min(1.0, nodes / M))
    return min(1.0, bound)


def expected_true_negative_recall(
    M: float, nodes: float, edges: float, frontier_size: float, path_length: float = 1.0
) -> float:
    """Expected true-negative recall of the reachability experiment (Figure 12)."""
    return 1.0 - reachability_false_positive_bound(M, nodes, edges, frontier_size, path_length)


def triangle_count_bias(M: float, nodes: float, edges: float, true_triangles: float) -> float:
    """Expected relative over-count of triangles caused by spurious edges.

    Every spurious edge closes, in expectation, ``2 * |E| / |V|`` new wedges
    into triangles (each wedge needs the third edge to exist, probability
    about ``|E| / |V|^2`` per node pair times ``|V|`` shared endpoints).  The
    value is a coarse upper bound used only as a sanity band for Figure 14.
    """
    _validate_positive("M", M)
    if true_triangles <= 0:
        raise ValueError("true_triangles must be positive")
    if nodes <= 0:
        return 0.0
    spurious_edges = edges * (1.0 - edge_query_correct_rate(M, edges))
    wedges_closed_per_edge = 2.0 * edges / nodes
    spurious_triangles = spurious_edges * wedges_closed_per_edge * min(1.0, edges / (nodes * nodes)) * nodes
    return spurious_triangles / true_triangles


def memory_accuracy_tradeoff(
    edges: float, nodes: float, fingerprint_bits: int, widths: list
) -> list:
    """Edge-query correct rate as a function of matrix width for fixed ``F``.

    Returns ``[(width, M, correct_rate), ...]`` — the planning curve an
    operator uses to pick the smallest sketch meeting an accuracy target.
    """
    if fingerprint_bits <= 0:
        raise ValueError("fingerprint_bits must be positive")
    fingerprint_range = 1 << fingerprint_bits
    rows = []
    for width in widths:
        if width <= 0:
            raise ValueError("widths must be positive")
        M = width * fingerprint_range
        rows.append((width, M, edge_query_correct_rate(M, edges, min(edges, math.sqrt(edges)))))
    return rows
